package query

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pass/internal/index"
	"pass/internal/kvstore"
	"pass/internal/provenance"
)

// fixture builds an engine over an in-memory record map + on-disk index.
type fixture struct {
	ix      *index.Index
	db      *kvstore.Store
	records map[provenance.ID]*provenance.Record
	engine  *Engine
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	f := &fixture{
		ix:      index.New(db),
		db:      db,
		records: make(map[provenance.ID]*provenance.Record),
	}
	f.engine = NewEngine(f.ix, func(id provenance.ID) (*provenance.Record, error) {
		rec, ok := f.records[id]
		if !ok {
			return nil, fmt.Errorf("no record %s", id.Short())
		}
		return rec, nil
	})
	return f
}

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return
}

func (f *fixture) add(t *testing.T, b *provenance.Builder) provenance.ID {
	t.Helper()
	rec, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var batch kvstore.Batch
	f.ix.AddToBatch(&batch, id, rec)
	if err := f.db.Apply(&batch); err != nil {
		t.Fatal(err)
	}
	f.records[id] = rec
	return rec.ComputeID()
}

// seed creates a small mixed corpus and returns interesting IDs.
func (f *fixture) seed(t *testing.T) (boston1, boston2, london, derived provenance.ID) {
	t.Helper()
	boston1 = f.add(t, provenance.NewRaw(digestOf(1), 10).
		Attr("zone", provenance.String("boston")).
		Attr("domain", provenance.String("traffic")).
		Attr("level", provenance.Int64(10)).
		Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(100, 0))).
		Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(200, 0))).
		CreatedAt(1))
	boston2 = f.add(t, provenance.NewRaw(digestOf(2), 10).
		Attr("zone", provenance.String("boston")).
		Attr("domain", provenance.String("weather")).
		Attr("level", provenance.Int64(50)).
		CreatedAt(2))
	london = f.add(t, provenance.NewRaw(digestOf(3), 10).
		Attr("zone", provenance.String("london")).
		Attr("domain", provenance.String("traffic")).
		Attr("level", provenance.Int64(90)).
		CreatedAt(3))
	derived = f.add(t, provenance.NewDerived(digestOf(4), 10, "aggregate", "2.0", boston1, london).
		Attr("domain", provenance.String("traffic")).
		CreatedAt(4))
	return
}

func ids(xs ...provenance.ID) []provenance.ID { return xs }

func sameSet(a, b []provenance.ID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[provenance.ID]struct{}, len(a))
	for _, id := range a {
		set[id] = struct{}{}
	}
	for _, id := range b {
		if _, ok := set[id]; !ok {
			return false
		}
	}
	return true
}

func TestExecuteAttrEq(t *testing.T) {
	f := newFixture(t)
	b1, b2, _, _ := f.seed(t)
	got, err := f.engine.Execute(AttrEq{Key: "zone", Value: provenance.String("boston")})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b1, b2)) {
		t.Fatalf("got %d ids", len(got))
	}
}

func TestExecuteAnd(t *testing.T) {
	f := newFixture(t)
	b1, _, _, _ := f.seed(t)
	got, err := f.engine.Execute(And{Preds: []Predicate{
		AttrEq{Key: "zone", Value: provenance.String("boston")},
		AttrEq{Key: "domain", Value: provenance.String("traffic")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b1)) {
		t.Fatalf("AND got %d ids, want 1", len(got))
	}
}

func TestExecuteOr(t *testing.T) {
	f := newFixture(t)
	b1, b2, l, _ := f.seed(t)
	got, err := f.engine.Execute(Or{Preds: []Predicate{
		AttrEq{Key: "zone", Value: provenance.String("boston")},
		AttrEq{Key: "zone", Value: provenance.String("london")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b1, b2, l)) {
		t.Fatalf("OR got %d ids, want 3", len(got))
	}
}

func TestExecuteAndWithNot(t *testing.T) {
	f := newFixture(t)
	_, b2, _, _ := f.seed(t)
	got, err := f.engine.Execute(And{Preds: []Predicate{
		AttrEq{Key: "zone", Value: provenance.String("boston")},
		Not{Pred: AttrEq{Key: "domain", Value: provenance.String("traffic")}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b2)) {
		t.Fatalf("AND NOT got %d ids, want boston2 only", len(got))
	}
}

func TestExecuteRange(t *testing.T) {
	f := newFixture(t)
	b1, b2, _, _ := f.seed(t)
	got, err := f.engine.Execute(AttrRange{Key: "level", Lo: provenance.Int64(0), Hi: provenance.Int64(60)})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b1, b2)) {
		t.Fatalf("range got %d ids", len(got))
	}
}

func TestExecuteTimeOverlap(t *testing.T) {
	f := newFixture(t)
	b1, _, _, _ := f.seed(t)
	got, err := f.engine.Execute(TimeOverlap{Start: time.Unix(150, 0).UnixNano(), End: time.Unix(160, 0).UnixNano()})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b1)) {
		t.Fatalf("overlap got %d ids", len(got))
	}
}

func TestExecuteAncestry(t *testing.T) {
	f := newFixture(t)
	b1, _, l, d := f.seed(t)
	got, err := f.engine.Execute(AncestorsOf{ID: d, MaxDepth: index.NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(b1, l)) {
		t.Fatalf("ancestors got %d ids, want 2", len(got))
	}
	got, err = f.engine.Execute(DescendantsOf{ID: b1, MaxDepth: index.NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got, ids(d)) {
		t.Fatalf("descendants got %d ids, want 1", len(got))
	}
}

func TestExecuteErrors(t *testing.T) {
	f := newFixture(t)
	f.seed(t)
	if _, err := f.engine.Execute(Not{Pred: AttrEq{Key: "k", Value: provenance.String("v")}}); !errors.Is(err, ErrUnindexable) {
		t.Fatalf("top-level NOT: %v", err)
	}
	if _, err := f.engine.Execute(And{}); !errors.Is(err, ErrEmptyPredicate) {
		t.Fatalf("empty AND: %v", err)
	}
	if _, err := f.engine.Execute(Or{}); !errors.Is(err, ErrEmptyPredicate) {
		t.Fatalf("empty OR: %v", err)
	}
	if _, err := f.engine.Execute(And{Preds: []Predicate{Not{Pred: AttrEq{Key: "k", Value: provenance.String("v")}}}}); !errors.Is(err, ErrUnindexable) {
		t.Fatalf("AND of only NOTs: %v", err)
	}
}

func TestMatchAgreesWithIndex(t *testing.T) {
	// Every indexed query must agree with the flat-scan Match baseline.
	f := newFixture(t)
	f.seed(t)
	preds := []Predicate{
		AttrEq{Key: "zone", Value: provenance.String("boston")},
		AttrEq{Key: "domain", Value: provenance.String("traffic")},
		AttrPrefix{Key: "zone", Prefix: "bo"},
		AttrRange{Key: "level", Lo: provenance.Int64(20), Hi: provenance.Int64(95)},
		TimeOverlap{Start: time.Unix(0, 0).UnixNano(), End: time.Unix(150, 0).UnixNano()},
		And{Preds: []Predicate{
			AttrEq{Key: "domain", Value: provenance.String("traffic")},
			Not{Pred: AttrEq{Key: "zone", Value: provenance.String("london")}},
		}},
		Or{Preds: []Predicate{
			AttrEq{Key: "zone", Value: provenance.String("london")},
			AttrEq{Key: "domain", Value: provenance.String("weather")},
		}},
	}
	for _, p := range preds {
		indexed, err := f.engine.Execute(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var scanned []provenance.ID
		for id, rec := range f.records {
			m, err := Match(rec, p)
			if err != nil {
				t.Fatalf("%s: match: %v", p, err)
			}
			if m {
				scanned = append(scanned, id)
			}
		}
		if !sameSet(indexed, scanned) {
			t.Fatalf("%s: index %d vs scan %d results", p, len(indexed), len(scanned))
		}
	}
}

func TestMatchAncestryErrors(t *testing.T) {
	rec, _, _ := provenance.NewRaw(digestOf(1), 1).CreatedAt(1).Build()
	if _, err := Match(rec, AncestorsOf{}); err == nil {
		t.Fatal("ancestry Match should error")
	}
}

func TestMatchTimeOverlapNoWindow(t *testing.T) {
	rec, _, _ := provenance.NewRaw(digestOf(1), 1).CreatedAt(1).Build()
	m, err := Match(rec, TimeOverlap{Start: 0, End: 100})
	if err != nil || m {
		t.Fatalf("windowless record matched overlap: %v %v", m, err)
	}
}

func TestScore(t *testing.T) {
	a, b, c := provenance.ID(digestOf(1)), provenance.ID(digestOf(2)), provenance.ID(digestOf(3))
	q := Score(ids(a, b), ids(a, c))
	if q.Precision != 0.5 || q.Recall != 0.5 {
		t.Fatalf("quality = %+v", q)
	}
	q = Score(nil, nil)
	if q.Precision != 1 || q.Recall != 1 {
		t.Fatalf("empty/empty = %+v", q)
	}
	q = Score(nil, ids(a))
	if q.Precision != 1 || q.Recall != 0 {
		t.Fatalf("empty/nonempty = %+v", q)
	}
	// Duplicates in got do not inflate precision.
	q = Score(ids(a, a, a), ids(a))
	if q.Precision != 1 || q.Recall != 1 {
		t.Fatalf("dup handling = %+v", q)
	}
}

func TestParseRoundTrips(t *testing.T) {
	f := newFixture(t)
	b1, b2, l, d := f.seed(t)
	cases := []struct {
		q    string
		want []provenance.ID
	}{
		{`zone=boston`, ids(b1, b2)},
		{`zone=boston AND domain=traffic`, ids(b1)},
		{`zone=boston OR zone=london`, ids(b1, b2, l)},
		{`zone~bo`, ids(b1, b2)},
		{`level IN [0,60]`, ids(b1, b2)},
		{`zone=boston AND NOT domain=traffic`, ids(b2)},
		{`(zone=boston AND domain=weather) OR zone=london`, ids(b2, l)},
		{fmt.Sprintf(`ANCESTORS(%s)`, d), ids(b1, l)},
		{fmt.Sprintf(`DESCENDANTS(%s, 1)`, b1), ids(d)},
		{`OVERLAPS [100000000000, 150000000000]`, ids(b1)},
	}
	for _, c := range cases {
		pred, err := Parse(c.q)
		if err != nil {
			t.Fatalf("parse %q: %v", c.q, err)
		}
		got, err := f.engine.Execute(pred)
		if err != nil {
			t.Fatalf("execute %q: %v", c.q, err)
		}
		if !sameSet(got, c.want) {
			t.Fatalf("%q: got %d ids, want %d", c.q, len(got), len(c.want))
		}
	}
}

func TestParseValueTyping(t *testing.T) {
	cases := []struct {
		tok  string
		kind provenance.Kind
	}{
		{`42`, provenance.KindInt},
		{`-7`, provenance.KindInt},
		{`3.5`, provenance.KindFloat},
		{`true`, provenance.KindBool},
		{`false`, provenance.KindBool},
		{`hello`, provenance.KindString},
		{`"quoted string"`, provenance.KindString},
		{`2024-01-01T00:00:00Z`, provenance.KindTime},
	}
	for _, c := range cases {
		if got := parseValue(c.tok); got.Kind != c.kind {
			t.Errorf("parseValue(%q).Kind = %v, want %v", c.tok, got.Kind, c.kind)
		}
	}
}

func TestParseQuotedStrings(t *testing.T) {
	pred, err := Parse(`note="sensor 17 replaced"`)
	if err != nil {
		t.Fatal(err)
	}
	eq, ok := pred.(AttrEq)
	if !ok || eq.Value.Str != "sensor 17 replaced" {
		t.Fatalf("parsed %+v", pred)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`zone=`,
		`zone`,
		`zone ? boston`,
		`(zone=boston`,
		`zone=boston extra`,
		`level IN [1,2`,
		`level IN [1, "x"]`,
		`ANCESTORS(nothex)`,
		`ANCESTORS(abcd)`, // too short
		`OVERLAPS [abc, def]`,
		`AND zone=boston`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestPredicateStrings(t *testing.T) {
	p := And{Preds: []Predicate{
		AttrEq{Key: "zone", Value: provenance.String("boston")},
		Not{Pred: TimeOverlap{Start: 1, End: 2}},
	}}
	s := p.String()
	if s == "" || !errorsContains(s, "zone=boston") || !errorsContains(s, "NOT") {
		t.Fatalf("String() = %q", s)
	}
}

func errorsContains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || containsStr(s, sub))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
