// Package query provides the provenance query model: a predicate AST
// combining multi-dimensional attribute selection (exact, prefix, range,
// time-overlap) with the ancestry operators the paper says conventional
// systems lack (Section III: "nearly all the queries have some component
// of transitive closure"), an executor that plans against the index layer,
// a residual matcher for unindexed evaluation (the flat-scan baseline of
// experiment E3), and precision/recall scoring for the paper's
// "Query Result Quality" criterion (Section IV).
package query

import (
	"errors"
	"fmt"
	"strings"

	"pass/internal/index"
	"pass/internal/provenance"
)

// Predicate is a node in the query AST.
type Predicate interface {
	String() string
	isPredicate()
}

// AttrEq selects records carrying exactly (Key, Value).
type AttrEq struct {
	Key   string
	Value provenance.Value
}

// AttrPrefix selects records whose string value for Key starts with Prefix.
type AttrPrefix struct {
	Key    string
	Prefix string
}

// AttrRange selects records whose value for Key lies in [Lo, Hi]
// (inclusive, same kind).
type AttrRange struct {
	Key    string
	Lo, Hi provenance.Value
}

// TimeOverlap selects records whose [t-start, t-end] window overlaps
// [Start, End] (unix nanoseconds, inclusive).
type TimeOverlap struct {
	Start, End int64
}

// AncestorsOf selects the transitive ancestors of ID ("find all the raw
// data from which this data set was derived").
type AncestorsOf struct {
	ID       provenance.ID
	MaxDepth int // index.NoLimit for unbounded
}

// DescendantsOf selects the transitive descendants of ID (taint tracking:
// "all downstream data is tainted and must be locatable").
type DescendantsOf struct {
	ID       provenance.ID
	MaxDepth int
}

// And is the conjunction of its legs.
type And struct {
	Preds []Predicate
}

// Or is the disjunction of its legs.
type Or struct {
	Preds []Predicate
}

// Not negates its leg. Executable only inside an And (as a residual
// filter); a top-level Not has no bounded result set.
type Not struct {
	Pred Predicate
}

func (AttrEq) isPredicate()        {}
func (AttrPrefix) isPredicate()    {}
func (AttrRange) isPredicate()     {}
func (TimeOverlap) isPredicate()   {}
func (AncestorsOf) isPredicate()   {}
func (DescendantsOf) isPredicate() {}
func (And) isPredicate()           {}
func (Or) isPredicate()            {}
func (Not) isPredicate()           {}

func (p AttrEq) String() string     { return fmt.Sprintf("%s=%s", p.Key, p.Value.AsString()) }
func (p AttrPrefix) String() string { return fmt.Sprintf("%s~%s*", p.Key, p.Prefix) }
func (p AttrRange) String() string {
	return fmt.Sprintf("%s in [%s,%s]", p.Key, p.Lo.AsString(), p.Hi.AsString())
}
func (p TimeOverlap) String() string { return fmt.Sprintf("time overlaps [%d,%d]", p.Start, p.End) }
func (p AncestorsOf) String() string {
	return fmt.Sprintf("ancestors(%s,depth=%d)", p.ID.Short(), p.MaxDepth)
}
func (p DescendantsOf) String() string {
	return fmt.Sprintf("descendants(%s,depth=%d)", p.ID.Short(), p.MaxDepth)
}
func (p And) String() string { return joinPreds(p.Preds, " AND ") }
func (p Or) String() string  { return joinPreds(p.Preds, " OR ") }
func (p Not) String() string { return "NOT (" + p.Pred.String() + ")" }

func joinPreds(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Errors.
var (
	// ErrUnindexable reports a predicate with no bounded execution plan
	// (e.g. a top-level Not).
	ErrUnindexable = errors.New("query: predicate cannot be executed against the index")
	// ErrEmptyPredicate reports And{}/Or{} with no legs.
	ErrEmptyPredicate = errors.New("query: empty predicate")
)

// Loader fetches a record by ID for residual evaluation.
type Loader func(provenance.ID) (*provenance.Record, error)

// Engine executes predicates against an index, loading records only for
// residual (Not) filtering.
type Engine struct {
	ix   *index.Index
	load Loader
}

// NewEngine returns an engine over ix, using load for residual filtering.
func NewEngine(ix *index.Index, load Loader) *Engine {
	return &Engine{ix: ix, load: load}
}

// Execute returns the IDs matching p. The result is deduplicated; order is
// plan-dependent, not significant.
func (e *Engine) Execute(p Predicate) ([]provenance.ID, error) {
	switch q := p.(type) {
	case AttrEq:
		return e.ix.LookupAttr(q.Key, q.Value)
	case AttrPrefix:
		return e.ix.LookupAttrPrefix(q.Key, q.Prefix)
	case AttrRange:
		return e.ix.LookupAttrRange(q.Key, q.Lo, q.Hi)
	case TimeOverlap:
		return e.ix.LookupTimeOverlap(q.Start, q.End)
	case AncestorsOf:
		return e.ix.Ancestors(q.ID, q.MaxDepth)
	case DescendantsOf:
		return e.ix.Descendants(q.ID, q.MaxDepth)
	case Or:
		if len(q.Preds) == 0 {
			return nil, ErrEmptyPredicate
		}
		lists := make([][]provenance.ID, 0, len(q.Preds))
		for _, leg := range q.Preds {
			ids, err := e.Execute(leg)
			if err != nil {
				return nil, err
			}
			lists = append(lists, ids)
		}
		return index.Union(lists...), nil
	case And:
		return e.executeAnd(q)
	case Not:
		return nil, fmt.Errorf("%w: top-level NOT", ErrUnindexable)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnindexable, p)
	}
}

// executeAnd runs the indexable legs through the index and intersects,
// then applies Not legs as a residual filter over loaded records.
func (e *Engine) executeAnd(q And) ([]provenance.ID, error) {
	if len(q.Preds) == 0 {
		return nil, ErrEmptyPredicate
	}
	var lists [][]provenance.ID
	var residual []Predicate
	for _, leg := range q.Preds {
		if n, ok := leg.(Not); ok {
			residual = append(residual, n)
			continue
		}
		ids, err := e.Execute(leg)
		if err != nil {
			return nil, err
		}
		lists = append(lists, ids)
	}
	if len(lists) == 0 {
		return nil, fmt.Errorf("%w: AND of only NOT legs", ErrUnindexable)
	}
	candidates := index.Intersect(lists...)
	if len(residual) == 0 || len(candidates) == 0 {
		return candidates, nil
	}
	if e.load == nil {
		return nil, fmt.Errorf("%w: NOT requires a record loader", ErrUnindexable)
	}
	out := candidates[:0]
	for _, id := range candidates {
		rec, err := e.load(id)
		if err != nil {
			return nil, err
		}
		keep := true
		for _, r := range residual {
			m, err := Match(rec, r)
			if err != nil {
				return nil, err
			}
			if !m {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, id)
		}
	}
	return out, nil
}

// Match evaluates p directly against a record, without any index. This is
// both the residual filter and the flat-scan baseline of experiment E3.
// Ancestry predicates cannot be evaluated against a single record and
// return an error.
func Match(rec *provenance.Record, p Predicate) (bool, error) {
	switch q := p.(type) {
	case AttrEq:
		return rec.Has(q.Key, q.Value), nil
	case AttrPrefix:
		for _, v := range rec.GetAll(q.Key) {
			if v.Kind == provenance.KindString && strings.HasPrefix(v.Str, q.Prefix) {
				return true, nil
			}
		}
		return false, nil
	case AttrRange:
		if q.Lo.Kind != q.Hi.Kind {
			return false, fmt.Errorf("query: range bounds have different kinds")
		}
		for _, v := range rec.GetAll(q.Key) {
			if v.Kind != q.Lo.Kind {
				continue
			}
			if valueLE(q.Lo, v) && valueLE(v, q.Hi) {
				return true, nil
			}
		}
		return false, nil
	case TimeOverlap:
		s, e, ok := rec.TimeRange()
		if !ok {
			return false, nil
		}
		return s <= q.End && e >= q.Start, nil
	case And:
		if len(q.Preds) == 0 {
			return false, ErrEmptyPredicate
		}
		for _, leg := range q.Preds {
			m, err := Match(rec, leg)
			if err != nil || !m {
				return false, err
			}
		}
		return true, nil
	case Or:
		if len(q.Preds) == 0 {
			return false, ErrEmptyPredicate
		}
		for _, leg := range q.Preds {
			m, err := Match(rec, leg)
			if err != nil {
				return false, err
			}
			if m {
				return true, nil
			}
		}
		return false, nil
	case Not:
		m, err := Match(rec, q.Pred)
		return !m, err
	default:
		return false, fmt.Errorf("%w: %T in Match", ErrUnindexable, p)
	}
}

// valueLE compares same-kind values: a <= b.
func valueLE(a, b provenance.Value) bool {
	switch a.Kind {
	case provenance.KindString:
		return a.Str <= b.Str
	case provenance.KindFloat:
		return a.Float <= b.Float
	case provenance.KindBytes:
		return string(a.Bytes) <= string(b.Bytes)
	default:
		return a.Int <= b.Int
	}
}

// Quality holds precision and recall against a ground-truth set (the
// paper's Query Result Quality criterion).
type Quality struct {
	Precision float64 // fraction of returned results that are relevant
	Recall    float64 // fraction of relevant results that were returned
}

// Score computes precision and recall of got against want. An empty got
// with empty want scores 1/1; an empty got with nonempty want scores 1/0
// (vacuous precision, zero recall).
func Score(got, want []provenance.ID) Quality {
	wantSet := make(map[provenance.ID]struct{}, len(want))
	for _, id := range want {
		wantSet[id] = struct{}{}
	}
	gotSet := make(map[provenance.ID]struct{}, len(got))
	relevant := 0
	for _, id := range got {
		if _, dup := gotSet[id]; dup {
			continue
		}
		gotSet[id] = struct{}{}
		if _, ok := wantSet[id]; ok {
			relevant++
		}
	}
	q := Quality{Precision: 1, Recall: 1}
	if len(gotSet) > 0 {
		q.Precision = float64(relevant) / float64(len(gotSet))
	}
	if len(wantSet) > 0 {
		q.Recall = float64(relevant) / float64(len(wantSet))
	}
	return q
}
