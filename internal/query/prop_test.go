package query

import (
	"fmt"
	"testing"

	"pass/internal/index"
	"pass/internal/kvstore"
	"pass/internal/provenance"
)

// propRand is a minimal xorshift* generator (the workload package's
// generator would create an import cycle here).
type propRand struct{ state uint64 }

func (r *propRand) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

func (r *propRand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// TestRandomPredicateEquivalence is the package's strongest property:
// for randomly generated corpora and randomly generated predicates, the
// indexed engine and the flat-scan Match baseline must return identical
// result sets. Any divergence is a bug in the index layer, the planner,
// or the matcher.
func TestRandomPredicateEquivalence(t *testing.T) {
	rng := &propRand{state: 20050405}

	keys := []string{"zone", "domain", "level", "score"}
	strVals := []string{"boston", "london", "tokyo", "traffic", "weather"}

	randValue := func(key string) provenance.Value {
		switch key {
		case "level":
			return provenance.Int64(int64(rng.Intn(8)))
		case "score":
			return provenance.Float(float64(rng.Intn(16)) / 4)
		default:
			return provenance.String(strVals[rng.Intn(len(strVals))])
		}
	}

	var randPred func(depth int) Predicate
	randPred = func(depth int) Predicate {
		if depth <= 0 || rng.Intn(3) == 0 {
			key := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0:
				return AttrEq{Key: key, Value: randValue(key)}
			case 1:
				if key == "level" {
					lo := int64(rng.Intn(8))
					return AttrRange{Key: key, Lo: provenance.Int64(lo), Hi: provenance.Int64(lo + int64(rng.Intn(4)))}
				}
				return AttrEq{Key: key, Value: randValue(key)}
			case 2:
				return AttrPrefix{Key: "zone", Prefix: []string{"bo", "lo", "t", ""}[rng.Intn(4)]}
			default:
				s := int64(rng.Intn(1000))
				return TimeOverlap{Start: s, End: s + int64(rng.Intn(500))}
			}
		}
		legs := make([]Predicate, 2+rng.Intn(2))
		for i := range legs {
			legs[i] = randPred(depth - 1)
		}
		switch rng.Intn(3) {
		case 0:
			return And{Preds: legs}
		case 1:
			return Or{Preds: legs}
		default:
			// NOT is only executable inside an AND with a positive leg.
			return And{Preds: []Predicate{
				randPred(depth - 1),
				Not{Pred: randPred(depth - 1)},
			}}
		}
	}

	for trial := 0; trial < 12; trial++ {
		db, err := kvstore.Open(t.TempDir(), kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		f := &fixture{
			ix:      index.New(db),
			db:      db,
			records: make(map[provenance.ID]*provenance.Record),
		}
		f.engine = NewEngine(f.ix, func(id provenance.ID) (*provenance.Record, error) {
			rec, ok := f.records[id]
			if !ok {
				return nil, fmt.Errorf("no record %s", id.Short())
			}
			return rec, nil
		})

		// Random corpus: 60 records with random attributes and windows.
		for i := 0; i < 60; i++ {
			b := provenance.NewRaw(digestOf(byte(i+1)), int64(i)).CreatedAt(int64(trial*1000 + i))
			for _, key := range keys {
				if rng.Intn(2) == 0 {
					b = b.Attr(key, randValue(key))
				}
			}
			if rng.Intn(2) == 0 {
				s := int64(rng.Intn(900))
				b = b.Attr(provenance.KeyStart, provenance.Value{Kind: provenance.KindTime, Int: s})
				b = b.Attr(provenance.KeyEnd, provenance.Value{Kind: provenance.KindTime, Int: s + int64(rng.Intn(200))})
			}
			f.add(t, b)
		}

		for q := 0; q < 40; q++ {
			pred := randPred(2)
			indexed, err := f.engine.Execute(pred)
			if err != nil {
				t.Fatalf("trial %d query %d (%s): %v", trial, q, pred, err)
			}
			var scanned []provenance.ID
			for id, rec := range f.records {
				m, err := Match(rec, pred)
				if err != nil {
					t.Fatalf("trial %d query %d (%s): match: %v", trial, q, pred, err)
				}
				if m {
					scanned = append(scanned, id)
				}
			}
			if !sameSet(indexed, scanned) {
				t.Fatalf("trial %d query %d: predicate %s\nindexed %d results, flat scan %d",
					trial, q, pred, len(indexed), len(scanned))
			}
		}
		db.Close()
	}
}
