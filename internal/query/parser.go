package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pass/internal/index"
	"pass/internal/provenance"
)

// Parse turns a textual query into a Predicate. The language is small but
// covers the paper's catalogue of query shapes (Section III):
//
//	expr     := term (OR term)*
//	term     := factor (AND factor)*
//	factor   := NOT factor | '(' expr ')' | atom
//	atom     := key '=' value            exact attribute match
//	          | key '~' prefix           string prefix match
//	          | key IN '[' v ',' v ']'   inclusive range
//	          | OVERLAPS '[' t ',' t ']' time-window overlap
//	          | ANCESTORS '(' hexid [',' depth] ')'
//	          | DESCENDANTS '(' hexid [',' depth] ')'
//
// Values are typed by shape: integers, floats, true/false, RFC 3339
// timestamps, and quoted or bare strings. Keywords are case-insensitive;
// keys and values are case-sensitive.
func Parse(input string) (Predicate, error) {
	p := &parser{toks: tokenize(input)}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("query: unexpected %q after expression", p.peek())
	}
	return pred, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.atEnd() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("query: expected %q, got %q", tok, got)
	}
	return nil
}

func isKeyword(tok, kw string) bool { return strings.EqualFold(tok, kw) }

func (p *parser) parseExpr() (Predicate, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	legs := []Predicate{left}
	for isKeyword(p.peek(), "OR") {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		legs = append(legs, right)
	}
	if len(legs) == 1 {
		return legs[0], nil
	}
	return Or{Preds: legs}, nil
}

func (p *parser) parseTerm() (Predicate, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	legs := []Predicate{left}
	for isKeyword(p.peek(), "AND") {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		legs = append(legs, right)
	}
	if len(legs) == 1 {
		return legs[0], nil
	}
	return And{Preds: legs}, nil
}

func (p *parser) parseFactor() (Predicate, error) {
	switch {
	case isKeyword(p.peek(), "NOT"):
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{Pred: inner}, nil
	case p.peek() == "(":
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Predicate, error) {
	tok := p.next()
	if tok == "" {
		return nil, fmt.Errorf("query: unexpected end of input")
	}
	switch {
	case isKeyword(tok, "OVERLAPS"):
		lo, hi, err := p.parseBracketPair()
		if err != nil {
			return nil, err
		}
		s, err := parseTimeBound(lo)
		if err != nil {
			return nil, err
		}
		e, err := parseTimeBound(hi)
		if err != nil {
			return nil, err
		}
		return TimeOverlap{Start: s, End: e}, nil
	case isKeyword(tok, "ANCESTORS"), isKeyword(tok, "DESCENDANTS"):
		id, depth, err := p.parseClosureArgs()
		if err != nil {
			return nil, err
		}
		if isKeyword(tok, "ANCESTORS") {
			return AncestorsOf{ID: id, MaxDepth: depth}, nil
		}
		return DescendantsOf{ID: id, MaxDepth: depth}, nil
	}

	// Keys may be quoted to include operator characters (the synthetic
	// "~type"/"~tool" attributes need this: `"~tool"=aggregate`).
	key := unquote(tok)
	op := p.next()
	switch op {
	case "=":
		val := p.next()
		if val == "" {
			return nil, fmt.Errorf("query: %s= missing value", key)
		}
		return AttrEq{Key: key, Value: parseValue(val)}, nil
	case "~":
		val := p.next()
		return AttrPrefix{Key: key, Prefix: unquote(val)}, nil
	default:
		if isKeyword(op, "IN") {
			lo, hi, err := p.parseBracketPair()
			if err != nil {
				return nil, err
			}
			vlo, vhi := parseValue(lo), parseValue(hi)
			if vlo.Kind != vhi.Kind {
				return nil, fmt.Errorf("query: range bounds %q and %q have different types", lo, hi)
			}
			return AttrRange{Key: key, Lo: vlo, Hi: vhi}, nil
		}
		return nil, fmt.Errorf("query: expected =, ~, or IN after %q, got %q", key, op)
	}
}

func (p *parser) parseBracketPair() (string, string, error) {
	if err := p.expect("["); err != nil {
		return "", "", err
	}
	lo := p.next()
	if err := p.expect(","); err != nil {
		return "", "", err
	}
	hi := p.next()
	if err := p.expect("]"); err != nil {
		return "", "", err
	}
	return lo, hi, nil
}

func (p *parser) parseClosureArgs() (provenance.ID, int, error) {
	var id provenance.ID
	if err := p.expect("("); err != nil {
		return id, 0, err
	}
	hexID := p.next()
	id, err := provenance.ParseID(hexID)
	if err != nil {
		return id, 0, err
	}
	depth := index.NoLimit
	if p.peek() == "," {
		p.next()
		d, err := strconv.Atoi(p.next())
		if err != nil {
			return id, 0, fmt.Errorf("query: bad depth: %w", err)
		}
		depth = d
	}
	if err := p.expect(")"); err != nil {
		return id, 0, err
	}
	return id, depth, nil
}

// parseValue types a literal by shape.
func parseValue(tok string) provenance.Value {
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		return provenance.String(tok[1 : len(tok)-1])
	}
	if tok == "true" {
		return provenance.Bool(true)
	}
	if tok == "false" {
		return provenance.Bool(false)
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return provenance.Int64(i)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return provenance.Float(f)
	}
	if t, err := time.Parse(time.RFC3339, tok); err == nil {
		return provenance.TimeVal(t)
	}
	return provenance.String(tok)
}

// parseTimeBound accepts RFC 3339 or raw unix nanoseconds.
func parseTimeBound(tok string) (int64, error) {
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return i, nil
	}
	if t, err := time.Parse(time.RFC3339, tok); err == nil {
		return t.UnixNano(), nil
	}
	return 0, fmt.Errorf("query: bad time bound %q (want RFC3339 or unix nanos)", tok)
}

func unquote(tok string) string {
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		return tok[1 : len(tok)-1]
	}
	return tok
}

// tokenize splits input into tokens: punctuation ( ) [ ] , = ~ stand
// alone; quoted strings are single tokens; everything else splits on
// whitespace.
func tokenize(input string) []string {
	var toks []string
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '=' || c == '~':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(input) && input[j] != '"' {
				j++
			}
			if j < len(input) {
				j++ // include closing quote
			}
			toks = append(toks, input[i:j])
			i = j
		default:
			j := i
			for j < len(input) && !strings.ContainsRune(" \t\n()[],=~\"", rune(input[j])) {
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		}
	}
	return toks
}
