package node

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"pass/internal/provenance"
)

// bootDurableCluster is bootCluster with a data dir per node. The
// returned configs have Listen pinned to the bound port, so a config can
// restart its node at the same identity: same ID, same port, same dir.
func bootDurableCluster(t *testing.T, mode string, n int, compactEvery int64) ([]*Node, []Config, []Peer, *Client) {
	t.Helper()
	nodes := make([]*Node, 0, n)
	cfgs := make([]Config, 0, n)
	roster := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			ID: int32(i), Mode: mode, Listen: "127.0.0.1:0",
			DataDir: t.TempDir(), CompactEvery: compactEvery,
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatalf("boot durable node %d: %v", i, err)
		}
		t.Cleanup(nd.Close)
		cfg.Listen = nd.Addr().String()
		nodes = append(nodes, nd)
		cfgs = append(cfgs, cfg)
		roster = append(roster, Peer{ID: int32(i), Addr: nd.Addr().String()})
	}
	c, err := NewClient(int32(n) + 200)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(c.Close)
	for _, nd := range nodes {
		if err := c.SetPeers(nd.Addr(), roster); err != nil {
			t.Fatalf("roster to node %d: %v", nd.cfg.ID, err)
		}
	}
	return nodes, cfgs, roster, c
}

// restartNode brings a node back at its previous identity (the config's
// pinned port and data dir). The caller must have Closed the old one.
func restartNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	nd, err := New(cfg)
	if err != nil {
		t.Fatalf("restart node %d: %v", cfg.ID, err)
	}
	t.Cleanup(nd.Close)
	return nd
}

func viewFP(n *Node) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Fingerprint()
}

func storeLen(n *Node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Len()
}

// TestDurableRestartPassnet: a passnet node restarted from its data dir
// recovers its exact pre-kill state — same view fingerprint, same store
// — and serves full-recall queries immediately, no catch-up round.
func TestDurableRestartPassnet(t *testing.T) {
	nodes, cfgs, _, c := bootDurableCluster(t, "passnet", 3, 0)
	acked := make(map[provenance.ID]bool)
	for i := 0; i < 9; i++ {
		id, err := c.Put(nodes[i%3].Addr(), testRecord(t, i, "durable"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
	}
	tickAll(t, c, nodes)

	wantFP := viewFP(nodes[1])
	wantLen := storeLen(nodes[1])
	nodes[1].Close()

	nd := restartNode(t, cfgs[1])
	if !nd.Recovered() {
		t.Fatal("restart from intact data dir did not recover")
	}
	if got := viewFP(nd); got != wantFP {
		t.Fatalf("recovered view fingerprint %x, want %x", got, wantFP)
	}
	if got := storeLen(nd); got != wantLen {
		t.Fatalf("recovered store has %d records, want %d", got, wantLen)
	}
	if v := nd.reg.Counter("pass_wal_replays_total").Value(); v == 0 {
		t.Fatal("recovery replayed zero WAL records")
	}
	// Zero recovery rounds: full recall straight after boot, via the
	// restarted node and via peers querying its recovered postings.
	for _, at := range []*Node{nd, nodes[0], nodes[2]} {
		if r := queryRecall(t, c, at.Addr(), "durable", acked); r != 1.0 {
			t.Errorf("post-restart recall via node %d = %.3f, want 1.0", at.cfg.ID, r)
		}
	}
	// The restarted node keeps publishing: its recovered sequence must
	// continue where the dead incarnation stopped, not restart at 1.
	id, err := c.Put(nd.Addr(), testRecord(t, 100, "durable"))
	if err != nil {
		t.Fatalf("post-restart put: %v", err)
	}
	acked[id] = true
	tickAll(t, c, []*Node{nodes[0], nd, nodes[2]})
	if r := queryRecall(t, c, nodes[0].Addr(), "durable", acked); r != 1.0 {
		t.Fatalf("recall including post-restart publish = %.3f, want 1.0", r)
	}
}

// TestDurableRestartDHT: same contract for a dht seat — placements
// (primary and replica buckets, records and postings) all recover.
func TestDurableRestartDHT(t *testing.T) {
	nodes, cfgs, _, c := bootDurableCluster(t, "dht", 4, 0)
	acked := make(map[provenance.ID]bool)
	for i := 0; i < 16; i++ {
		id, err := c.Put(nodes[i%4].Addr(), testRecord(t, i, "durable-dht"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
	}
	tickAll(t, c, nodes)

	wantLen := storeLen(nodes[2])
	nodes[2].Close()
	nd := restartNode(t, cfgs[2])
	if !nd.Recovered() {
		t.Fatal("restart from intact data dir did not recover")
	}
	if got := storeLen(nd); got != wantLen {
		t.Fatalf("recovered store has %d records, want %d", got, wantLen)
	}
	all := []*Node{nodes[0], nodes[1], nd, nodes[3]}
	for _, at := range all {
		if r := queryRecall(t, c, at.Addr(), "durable-dht", acked); r != 1.0 {
			t.Errorf("post-restart recall via node %d = %.3f, want 1.0", at.cfg.ID, r)
		}
	}
}

// putSolo publishes k records into a single-node durable cluster and
// returns the node, its restart config, and the client.
func putSolo(t *testing.T, k int, ce int64) (*Node, Config, *Client) {
	t.Helper()
	nodes, cfgs, _, c := bootDurableCluster(t, "passnet", 1, ce)
	for i := 0; i < k; i++ {
		if _, err := c.Put(nodes[0].Addr(), testRecord(t, i, "fault")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return nodes[0], cfgs[0], c
}

// TestWALTornTailTolerated: a torn record (crash mid-append) at the WAL
// tail is truncated on recovery; everything before it survives.
func TestWALTornTailTolerated(t *testing.T) {
	nd, cfg, _ := putSolo(t, 5, 0)
	nd.Close()
	walPath := filepath.Join(cfg.DataDir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A record header promising 1000 bytes, followed by only 5: exactly
	// what a crash mid-append leaves behind.
	var torn [13]byte
	binary.LittleEndian.PutUint32(torn[0:4], 1000)
	binary.LittleEndian.PutUint32(torn[4:8], 0xDEADBEEF)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back := restartNode(t, cfg)
	if !back.Recovered() {
		t.Fatal("torn tail prevented recovery")
	}
	if got := storeLen(back); got != 5 {
		t.Fatalf("recovered %d records past a torn tail, want 5", got)
	}
}

// walRecordOffsets walks the WAL's record framing and returns each
// record's start offset.
func walRecordOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(8)
	for off+8 <= int64(len(b)) {
		l := int64(binary.LittleEndian.Uint32(b[off : off+4]))
		if off+8+l > int64(len(b)) {
			break
		}
		offs = append(offs, off)
		off += 8 + l
	}
	return offs
}

// TestWALBitFlipDropsSuffix: a corrupt CRC mid-log stops replay at the
// flipped record — the valid prefix recovers, the poisoned suffix is
// discarded rather than applied wrong.
func TestWALBitFlipDropsSuffix(t *testing.T) {
	nd, cfg, _ := putSolo(t, 5, 0)
	nd.Close()
	walPath := filepath.Join(cfg.DataDir, "wal.log")
	offs := walRecordOffsets(t, walPath)
	if len(offs) < 2 {
		t.Fatalf("want >=2 wal records, have %d", len(offs))
	}
	last := offs[len(offs)-1]
	f, err := os.OpenFile(walPath, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the last record; its CRC no longer matches.
	if _, err := f.WriteAt([]byte{0xFF}, last+8+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back := restartNode(t, cfg)
	if got := storeLen(back); got != 4 {
		t.Fatalf("recovered %d records past a bit flip, want 4 (prefix only)", got)
	}
}

// TestCrashBeforeSnapshotRenameIgnoresTemp: a crash before the rename
// leaves a stray snap.tmp; recovery must ignore it and replay the WAL.
func TestCrashBeforeSnapshotRenameIgnoresTemp(t *testing.T) {
	nd, cfg, _ := putSolo(t, 5, 0)
	nd.Close()
	if err := os.WriteFile(filepath.Join(cfg.DataDir, "snap.tmp"), []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	back := restartNode(t, cfg)
	if got := storeLen(back); got != 5 {
		t.Fatalf("recovered %d records with a stray snap.tmp, want 5", got)
	}
}

// TestCrashAfterRenameBeforeReset is the other compaction crash window:
// the snapshot landed but the WAL was not yet truncated, so recovery
// replays the full log ON TOP of the snapshot. The replay must be
// idempotent — same fingerprint, no duplicated state.
func TestCrashAfterRenameBeforeReset(t *testing.T) {
	nd, cfg, _ := putSolo(t, 5, 0)
	walPath := filepath.Join(cfg.DataDir, "wal.log")
	preWal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Compact(); err != nil {
		t.Fatal(err)
	}
	want := viewFP(nd)
	nd.Close()
	// Undo the Reset: restore the pre-compaction log next to the
	// fresh snapshot — exactly the crash-between-rename-and-reset state.
	if err := os.WriteFile(walPath, preWal, 0o644); err != nil {
		t.Fatal(err)
	}
	back := restartNode(t, cfg)
	if got := storeLen(back); got != 5 {
		t.Fatalf("snapshot+full-log replay yielded %d records, want 5", got)
	}
	if got := viewFP(back); got != want {
		t.Fatalf("snapshot+full-log replay fingerprint %x, want %x", got, want)
	}
}

// TestCompactionBoundsWAL: crossing the threshold checkpoints into the
// snapshot and truncates the log, so WAL size is bounded by activity
// since the last compaction, not by history.
func TestCompactionBoundsWAL(t *testing.T) {
	nd, cfg, _ := putSolo(t, 30, 8)
	nd.mu.Lock()
	c := nd.log.Count()
	nd.mu.Unlock()
	if c >= 8 {
		t.Fatalf("wal holds %d records, compaction at 8 never bounded it", c)
	}
	if nd.reg.Counter("pass_wal_truncations_total").Value() == 0 {
		t.Fatal("no compaction truncations counted")
	}
	if _, err := os.Stat(filepath.Join(cfg.DataDir, "snap")); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	want := viewFP(nd)
	nd.Close()
	back := restartNode(t, cfg)
	if got := storeLen(back); got != 30 {
		t.Fatalf("recovered %d records via snapshot+wal, want 30", got)
	}
	if got := viewFP(back); got != want {
		t.Fatalf("recovered fingerprint %x, want %x", got, want)
	}
}

// TestColdRejoinPassnetPullsView: a wiped passnet node boots in declared
// catch-up mode, pulls peer view snapshots at its first tick, and can
// both answer queries about surviving records and keep publishing (its
// own sequence fast-forwards past what peers saw from the dead
// incarnation). Records that lived only on the wiped disk are gone — by
// design; durability of those is exactly what the intact-dir path buys.
func TestColdRejoinPassnetPullsView(t *testing.T) {
	nodes, cfgs, roster, c := bootDurableCluster(t, "passnet", 3, 0)
	survivors := make(map[provenance.ID]bool)
	for i := 0; i < 9; i++ {
		id, err := c.Put(nodes[i%3].Addr(), testRecord(t, i, "rejoin"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if i%3 != 2 {
			survivors[id] = true // records homed at the to-be-wiped node are lost with its disk
		}
	}
	tickAll(t, c, nodes)
	preSeq := func() uint64 {
		st, err := c.Stat(nodes[2].Addr())
		if err != nil {
			t.Fatal(err)
		}
		return st.Seq
	}()

	nodes[2].Close()
	if err := os.RemoveAll(cfgs[2].DataDir); err != nil {
		t.Fatal(err)
	}
	nd := restartNode(t, cfgs[2])
	if nd.Recovered() {
		t.Fatal("wiped node claims recovery")
	}
	st, err := c.Stat(nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !st.CatchingUp {
		t.Fatal("wiped node not in declared catch-up mode")
	}
	// A wiped node lost its roster too; the operator (harness) re-seeds it.
	if err := c.SetPeers(nd.Addr(), roster); err != nil {
		t.Fatal(err)
	}
	all := []*Node{nodes[0], nodes[1], nd}
	tickAll(t, c, all)
	if st, err = c.Stat(nd.Addr()); err != nil || st.CatchingUp {
		t.Fatalf("catch-up did not complete: err=%v stat=%+v", err, st)
	}
	// The pulled view locates every surviving record.
	if r := queryRecall(t, c, nd.Addr(), "rejoin", survivors); r != 1.0 {
		t.Fatalf("post-rejoin recall via wiped node = %.3f, want 1.0", r)
	}
	// And its sequence fast-forwarded: a fresh publish is not suppressed
	// by peers as an already-seen duplicate.
	if st.Seq < preSeq {
		t.Fatalf("rejoined seq %d regressed below pre-wipe %d", st.Seq, preSeq)
	}
	id, err := c.Put(nd.Addr(), testRecord(t, 200, "rejoin"))
	if err != nil {
		t.Fatal(err)
	}
	survivors[id] = true
	tickAll(t, c, all)
	for _, at := range all {
		if r := queryRecall(t, c, at.Addr(), "rejoin", survivors); r != 1.0 {
			t.Errorf("post-rejoin publish recall via node %d = %.3f, want 1.0", at.cfg.ID, r)
		}
	}
}

// TestColdRejoinDHTPullsPlacements: a wiped dht seat asks every peer for
// the placements its ring position should hold (TRecover) and recovers
// full coverage — records and attribute postings, primary and replica.
func TestColdRejoinDHTPullsPlacements(t *testing.T) {
	nodes, cfgs, roster, c := bootDurableCluster(t, "dht", 4, 0)
	acked := make(map[provenance.ID]bool)
	for i := 0; i < 16; i++ {
		id, err := c.Put(nodes[i%4].Addr(), testRecord(t, i, "rejoin-dht"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
	}
	tickAll(t, c, nodes)

	nodes[1].Close()
	if err := os.RemoveAll(cfgs[1].DataDir); err != nil {
		t.Fatal(err)
	}
	nd := restartNode(t, cfgs[1])
	if nd.Recovered() {
		t.Fatal("wiped node claims recovery")
	}
	if err := c.SetPeers(nd.Addr(), roster); err != nil {
		t.Fatal(err)
	}
	all := []*Node{nodes[0], nd, nodes[2], nodes[3]}
	tickAll(t, c, all)
	if storeLen(nd) == 0 {
		t.Fatal("catch-up pulled no primary records onto the rejoined seat")
	}
	for _, at := range all {
		if r := queryRecall(t, c, at.Addr(), "rejoin-dht", acked); r != 1.0 {
			t.Errorf("post-rejoin recall via node %d = %.3f, want 1.0", at.cfg.ID, r)
		}
	}
	// The pulled placements are WAL-logged: a second (durable) restart
	// of the same seat recovers them from disk alone.
	prevLen := storeLen(nd)
	nd.Close()
	back := restartNode(t, cfgs[1])
	if !back.Recovered() {
		t.Fatal("post-catch-up restart did not recover from disk")
	}
	if got := storeLen(back); got != prevLen {
		t.Fatalf("second restart recovered %d records, want %d", got, prevLen)
	}
}
