package node

// durable.go is the node's crash-restart story. With Config.DataDir set,
// every applied mutation is appended to a per-node write-ahead log BEFORE
// the verb acknowledges — so the state a restarted process recovers is
// always a superset of what any client or peer saw acknowledged — and the
// log is periodically compacted into a snapshot (temp file + fsync +
// rename, then wal.Reset), bounding replay work.
//
// Record scheme (first byte tags the mutation):
//
//	'r'  roster JSON (the TPeers payload) — a restarted node knows its
//	     peers without harness help
//	'p'  own publish: 8-byte LE sequence + encoded provenance record
//	'd'  applied gossip delta (wireDelta JSON)
//	'a'  outbox advance: 4-byte LE peer + 8-byte LE acked sequence
//	's'  applied DHT placement (storeMsg JSON)
//
// The recovery contract is replay-on-top-of-snapshot idempotence: a crash
// between the snapshot rename and the wal.Reset leaves snapshot + full
// log, and replaying every logged mutation over the restored snapshot
// must land on the same state. Publishes skip when the store already
// holds the record, deltas are refused by the view's sequence check,
// acks take the max, and placements re-add records the store dedups.
//
// Two restart flavours emerge:
//
//   - Durable restart (data dir intact): snapshot + WAL rebuild the full
//     pre-kill state minus only unacknowledged suffix; the node answers
//     queries at its old coverage immediately and transfers nothing.
//   - Cold rejoin (data dir wiped): nothing recovers, so the node boots
//     in declared catch-up mode and pulls state at its first tick —
//     passnet merges peer view snapshots over TSnap (fast-forwarding its
//     own sequence so peers' duplicate-suppression doesn't orphan its
//     future publishes), dht asks every peer for the placements its ring
//     seat should hold over TRecover. Both responses routinely exceed
//     the datagram ceiling and ride the wire package's stream framing.
//
// Durability here is against process death (SIGKILL): the write landed
// in the page cache before the ack, which survives the process. Whole-
// machine crash durability additionally needs Config.Fsync, which syncs
// the WAL on every append at a substantial latency cost.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sort"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/wal"
	"pass/internal/wire"
)

// defaultCompactEvery is the WAL record count that triggers compaction
// when Config.CompactEvery is zero.
const defaultCompactEvery = 256

var snapMagic = [8]byte{'P', 'A', 'S', 'S', 'S', 'N', 'P', '1'}

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

func (n *Node) walFile() string  { return filepath.Join(n.cfg.DataDir, "wal.log") }
func (n *Node) snapFile() string { return filepath.Join(n.cfg.DataDir, "snap") }

// snapDelta is one retained own-publish delta in a snapshot: the window
// of publishes some peer may not have acknowledged yet, kept so a
// restarted node can rebuild its per-peer outboxes.
type snapDelta struct {
	Seq   uint64   `json:"seq"`
	IDs   [][]byte `json:"ids"`
	Attrs []string `json:"attrs"`
}

// snapshot is the compacted on-disk state: magic, CRC, then this JSON.
type snapshot struct {
	Mode   string `json:"mode"`
	Roster []Peer `json:"roster,omitempty"`

	// passnet.
	Seq   uint64           `json:"seq,omitempty"`
	Acked map[int32]uint64 `json:"acked,omitempty"`
	Own   []snapDelta      `json:"own,omitempty"`
	View  []byte           `json:"view,omitempty"`

	// shared: the node's primary record store.
	Recs [][]byte `json:"recs,omitempty"`

	// dht.
	Attrs     map[string][]provenance.ID           `json:"attrs,omitempty"`
	ReplRecs  map[int32][][]byte                   `json:"repl_recs,omitempty"`
	ReplAttrs map[int32]map[string][]provenance.ID `json:"repl_attrs,omitempty"`
}

// recoverData restores node state from the data dir (snapshot first,
// then WAL replay on top) and leaves the WAL open for appending. Called
// from New before the verb handler is installed, so no locking. A node
// that recovers nothing declares catch-up mode and pulls state from its
// peers at its first tick.
func (n *Node) recoverData() error {
	if err := os.MkdirAll(n.cfg.DataDir, 0o755); err != nil {
		return fmt.Errorf("node: data dir: %w", err)
	}
	if err := n.loadSnapshot(); err != nil {
		return err
	}
	var replayed int64
	l, err := wal.Open(n.walFile(), wal.Options{SyncOnAppend: n.cfg.Fsync}, func(p []byte) error {
		replayed++
		return n.replayRecord(p)
	})
	if err != nil {
		return err
	}
	n.log = l
	n.reg.Counter("pass_wal_replays_total").Add(replayed)
	if replayed > 0 {
		n.recovered = true
	}
	n.rebuildOutboxLocked()
	if !n.recovered {
		n.catchup = true
	}
	return nil
}

// loadSnapshot restores the compacted state, if any. A corrupt snapshot
// is a hard error: starting empty while the WAL assumes the snapshot's
// base state would silently diverge, which is worse than refusing.
func (n *Node) loadSnapshot() error {
	b, err := os.ReadFile(n.snapFile())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("node: read snapshot: %w", err)
	}
	if len(b) < 12 || [8]byte(b[:8]) != snapMagic {
		return fmt.Errorf("node: %s is not a snapshot", n.snapFile())
	}
	if crc32.Checksum(b[12:], snapCRCTable) != binary.LittleEndian.Uint32(b[8:12]) {
		return fmt.Errorf("node: snapshot %s fails its checksum", n.snapFile())
	}
	var s snapshot
	if err := json.Unmarshal(b[12:], &s); err != nil {
		return fmt.Errorf("node: decode snapshot: %w", err)
	}
	if s.Mode != n.cfg.Mode {
		return fmt.Errorf("node: snapshot is mode %q, node is %q", s.Mode, n.cfg.Mode)
	}
	if len(s.Roster) > 0 {
		if err := n.setRosterLocked(s.Roster); err != nil {
			return err
		}
	}
	switch n.cfg.Mode {
	case "passnet":
		n.seq = s.Seq
		for pid, sq := range s.Acked {
			n.acked[pid] = sq
		}
		if len(s.View) > 0 {
			v, err := siteview.DecodeView(s.View)
			if err != nil {
				return fmt.Errorf("node: decode snapshot view: %w", err)
			}
			n.view = v
		}
		for _, sd := range s.Own {
			n.own[sd.Seq] = siteview.NewDelta(
				netsim.SiteID(n.cfg.ID), sd.Seq, bytesIDs(sd.IDs), sd.Attrs)
		}
		for _, rb := range s.Recs {
			rec, err := provenance.Decode(rb)
			if err != nil {
				return fmt.Errorf("node: decode snapshot record: %w", err)
			}
			id := rec.ComputeID()
			n.store.Add(id, rec)
			for _, a := range arch.QueriableAttrs(rec) {
				mk := mkOf(a)
				n.posts[mk] = append(n.posts[mk], id)
			}
		}
	case "dht":
		for _, rb := range s.Recs {
			rec, err := provenance.Decode(rb)
			if err != nil {
				return fmt.Errorf("node: decode snapshot record: %w", err)
			}
			n.store.Add(rec.ComputeID(), rec)
		}
		for mk, ids := range s.Attrs {
			n.attrs[mk] = append([]provenance.ID(nil), ids...)
		}
		for src, recs := range s.ReplRecs {
			rs := n.replicaStoreFor(src)
			for _, rb := range recs {
				rec, err := provenance.Decode(rb)
				if err != nil {
					return fmt.Errorf("node: decode snapshot replica record: %w", err)
				}
				rs.Add(rec.ComputeID(), rec)
			}
		}
		for src, bucket := range s.ReplAttrs {
			dst := make(map[string][]provenance.ID, len(bucket))
			for mk, ids := range bucket {
				dst[mk] = append([]provenance.ID(nil), ids...)
			}
			n.replAttrs[src] = dst
		}
	}
	n.recovered = true
	return nil
}

// replayRecord applies one WAL record during recovery. Every branch is
// idempotent against a snapshot that already contains the mutation (the
// crash-between-rename-and-reset window).
func (n *Node) replayRecord(p []byte) error {
	if len(p) == 0 {
		return fmt.Errorf("node: empty wal record")
	}
	tag, body := p[0], p[1:]
	switch tag {
	case 'r':
		var roster []Peer
		if err := json.Unmarshal(body, &roster); err != nil {
			return fmt.Errorf("node: wal roster: %w", err)
		}
		return n.setRosterLocked(roster)
	case 'p':
		if len(body) < 8 {
			return fmt.Errorf("node: short wal publish")
		}
		seq := binary.LittleEndian.Uint64(body[:8])
		rec, err := provenance.Decode(body[8:])
		if err != nil {
			return fmt.Errorf("node: wal publish record: %w", err)
		}
		id := rec.ComputeID()
		if _, ok := n.store.Get(id); ok {
			return nil // already in the snapshot
		}
		n.applyOwnPublishLocked(seq, id, rec)
		return nil
	case 'd':
		var wd wireDelta
		if err := json.Unmarshal(body, &wd); err != nil {
			return fmt.Errorf("node: wal delta: %w", err)
		}
		ids := make([]provenance.ID, len(wd.IDs))
		for i, b := range wd.IDs {
			copy(ids[i][:], b)
		}
		// A stale sequence is refused by the view itself — idempotent.
		n.view.Apply(siteview.NewDelta(netsim.SiteID(wd.Origin), wd.Seq, ids, wd.Attrs))
		return nil
	case 'a':
		if len(body) != 12 {
			return fmt.Errorf("node: short wal advance")
		}
		pid := int32(binary.LittleEndian.Uint32(body[:4]))
		n.advanceAckedLocked(pid, binary.LittleEndian.Uint64(body[4:12]))
		return nil
	case 's':
		var msg storeMsg
		if err := json.Unmarshal(body, &msg); err != nil {
			return fmt.Errorf("node: wal store: %w", err)
		}
		return n.applyStoreLocked(msg)
	default:
		return fmt.Errorf("node: unknown wal record tag %q", tag)
	}
}

// applyOwnPublishLocked commits one of this node's own publishes: store,
// postings, view, sequence, and the retained-delta window the outbox
// rebuild draws from. Shared by the live put path and WAL replay. Caller
// holds n.mu (or is in single-threaded recovery).
func (n *Node) applyOwnPublishLocked(seq uint64, id provenance.ID, rec *provenance.Record) *siteview.Delta {
	n.store.Add(id, rec)
	var keys []string
	for _, a := range arch.QueriableAttrs(rec) {
		mk := mkOf(a)
		keys = append(keys, mk)
		n.posts[mk] = append(n.posts[mk], id)
	}
	d := siteview.NewDelta(netsim.SiteID(n.cfg.ID), seq, []provenance.ID{id}, keys)
	n.view.Apply(d)
	if seq > n.seq {
		n.seq = seq
	}
	n.own[seq] = d
	return d
}

// advanceAckedLocked records that peer pid has acknowledged own deltas
// through seq, and prunes retained deltas every peer has acknowledged.
func (n *Node) advanceAckedLocked(pid int32, seq uint64) {
	if seq > n.acked[pid] {
		n.acked[pid] = seq
	}
	n.pruneOwnLocked()
}

// pruneOwnLocked drops retained own deltas at or below the minimum
// acknowledged sequence across the current roster (with no peers there
// is nothing left to resend).
func (n *Node) pruneOwnLocked() {
	min := n.seq
	for _, pid := range n.order {
		if a := n.acked[pid]; a < min {
			min = a
		}
	}
	for sq := range n.own {
		if sq <= min {
			delete(n.own, sq)
		}
	}
}

// rebuildOutboxLocked re-enqueues, for every peer, the own deltas past
// that peer's acknowledged sequence — the restart continuation of the
// strict in-order outbox discipline.
func (n *Node) rebuildOutboxLocked() {
	for _, pid := range n.order {
		n.outbox[pid] = n.outbox[pid][:0]
		for sq := n.acked[pid] + 1; sq <= n.seq; sq++ {
			if d := n.own[sq]; d != nil {
				n.outbox[pid] = append(n.outbox[pid], d)
			}
		}
	}
}

// walAppend logs one mutation record. Caller holds n.mu; append-before-
// ack is the durability contract, so callers append before their reply.
// Crossing the compaction threshold checkpoints inline (a local disk
// write, bounded by state size).
func (n *Node) walAppend(tag byte, body []byte) {
	if n.log == nil {
		return
	}
	rec := make([]byte, 1+len(body))
	rec[0] = tag
	copy(rec[1:], body)
	if err := n.log.Append(rec); err != nil {
		n.reg.Counter("pass_wal_errors_total").Inc()
		return
	}
	n.reg.Counter("pass_wal_appends_total").Inc()
	n.reg.Counter("pass_wal_bytes_total").Add(int64(1 + len(body)))
	if n.log.Count() >= n.compactEvery() {
		if err := n.compactLocked(); err != nil {
			n.reg.Counter("pass_wal_errors_total").Inc()
		}
	}
}

func (n *Node) compactEvery() int64 {
	if n.cfg.CompactEvery > 0 {
		return n.cfg.CompactEvery
	}
	return defaultCompactEvery
}

// Compact checkpoints the node's state into the snapshot file and
// truncates the WAL. No-op without a data dir.
func (n *Node) Compact() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.compactLocked()
}

func (n *Node) compactLocked() error {
	if n.log == nil {
		return nil
	}
	if err := n.writeSnapshotLocked(); err != nil {
		return err
	}
	// Crash window: snapshot renamed, WAL not yet reset — replay over the
	// snapshot is idempotent by construction, so recovery still lands on
	// the same state.
	if err := n.log.Reset(); err != nil {
		return err
	}
	n.reg.Counter("pass_wal_truncations_total").Inc()
	return nil
}

// writeSnapshotLocked serializes the node's state and atomically
// replaces the snapshot file: temp file, fsync, rename. A crash before
// the rename leaves a stray .tmp the next recovery ignores; a crash
// after it is the idempotent-replay window compactLocked describes.
func (n *Node) writeSnapshotLocked() error {
	s := snapshot{Mode: n.cfg.Mode}
	for _, pid := range n.order {
		s.Roster = append(s.Roster, Peer{ID: pid, Addr: n.peers[pid].String()})
	}
	for _, id := range n.store.IDs() {
		rec, _ := n.store.Get(id)
		s.Recs = append(s.Recs, rec.Encode())
	}
	switch n.cfg.Mode {
	case "passnet":
		s.Seq = n.seq
		s.Acked = make(map[int32]uint64, len(n.acked))
		for pid, sq := range n.acked {
			s.Acked[pid] = sq
		}
		n.pruneOwnLocked()
		seqs := make([]uint64, 0, len(n.own))
		for sq := range n.own {
			seqs = append(seqs, sq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, sq := range seqs {
			d := n.own[sq]
			s.Own = append(s.Own, snapDelta{Seq: sq, IDs: idsBytes(d.IDs), Attrs: d.AttrKeys})
		}
		view, err := n.view.Encode()
		if err != nil {
			return fmt.Errorf("node: encode view: %w", err)
		}
		s.View = view
	case "dht":
		s.Attrs = make(map[string][]provenance.ID, len(n.attrs))
		for mk, ids := range n.attrs {
			s.Attrs[mk] = dedupe(append([]provenance.ID(nil), ids...))
		}
		s.ReplRecs = make(map[int32][][]byte, len(n.replRecs))
		for src, rs := range n.replRecs {
			for _, id := range rs.IDs() {
				rec, _ := rs.Get(id)
				s.ReplRecs[src] = append(s.ReplRecs[src], rec.Encode())
			}
		}
		s.ReplAttrs = make(map[int32]map[string][]provenance.ID, len(n.replAttrs))
		for src, bucket := range n.replAttrs {
			dst := make(map[string][]provenance.ID, len(bucket))
			for mk, ids := range bucket {
				dst[mk] = dedupe(append([]provenance.ID(nil), ids...))
			}
			s.ReplAttrs[src] = dst
		}
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("node: encode snapshot: %w", err)
	}
	buf := make([]byte, 12+len(payload))
	copy(buf, snapMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, snapCRCTable))
	copy(buf[12:], payload)

	tmp := n.snapFile() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("node: snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("node: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("node: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("node: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, n.snapFile()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("node: snapshot rename: %w", err)
	}
	return nil
}

func bytesIDs(bs [][]byte) []provenance.ID {
	ids := make([]provenance.ID, len(bs))
	for i, b := range bs {
		copy(ids[i][:], b)
	}
	return ids
}

// ---- catch-up: the cold-rejoin pull path ----

// catchUpIfDue runs the declared catch-up pull when the node booted with
// a data dir but recovered nothing. Invoked at the top of every TTick;
// queries served before it completes answer from whatever partial state
// exists (the degraded mode TStat reports as catching_up).
func (n *Node) catchUpIfDue() {
	n.mu.Lock()
	if !n.catchup || len(n.order) == 0 {
		n.mu.Unlock()
		return
	}
	type target struct {
		id   int32
		addr *net.UDPAddr
	}
	peers := make([]target, 0, len(n.order))
	for _, pid := range n.order {
		peers = append(peers, target{pid, n.peers[pid]})
	}
	mode := n.cfg.Mode
	n.mu.Unlock()

	pulled := false
	for _, p := range peers {
		switch mode {
		case "passnet":
			// Pull every reachable peer's view snapshot, not just one:
			// each peer's own sequence only its view is guaranteed to
			// carry current, and merging fast-forwards the seq vector so
			// redelivered outbox tails dedupe instead of gapping.
			resp, err := n.ep.RequestStream(p.addr, wire.TSnap, nil)
			if err != nil {
				continue
			}
			v, err := siteview.DecodeView(resp.Payload)
			if err != nil {
				continue
			}
			n.mu.Lock()
			n.view.Merge(v)
			// Fast-forward own sequence past anything peers already saw
			// from the pre-wipe incarnation, or new publishes would be
			// suppressed as duplicates forever.
			if s := v.Seq(netsim.SiteID(n.cfg.ID)); s > n.seq {
				n.seq = s
			}
			n.mu.Unlock()
			pulled = true
		case "dht":
			var seat [4]byte
			binary.LittleEndian.PutUint32(seat[:], uint32(n.cfg.ID))
			resp, err := n.ep.RequestStream(p.addr, wire.TRecover, seat[:])
			if err != nil {
				continue
			}
			var msgs []storeMsg
			if err := json.Unmarshal(resp.Payload, &msgs); err != nil {
				continue
			}
			for _, m := range msgs {
				// Through the verb path so each recovered placement is
				// WAL-logged — pulled state must survive the NEXT crash.
				b, _ := json.Marshal(m)
				n.handleStore(b, func(wire.Type, []byte) {})
			}
			pulled = true
		}
	}
	if pulled {
		n.mu.Lock()
		n.catchup = false
		n.reg.Counter("pass_node_catchup_pulls_total").Inc()
		// Checkpoint the pulled state immediately: it arrived over the
		// wire, not through the WAL append path.
		if err := n.compactLocked(); err != nil {
			n.reg.Counter("pass_wal_errors_total").Inc()
		}
		n.mu.Unlock()
	}
}

// handleSnap serves the node's full view to a catching-up peer. The
// response routinely exceeds the datagram ceiling; requesters use the
// stream framing (RequestStream).
func (n *Node) handleSnap(reply func(wire.Type, []byte)) {
	if n.cfg.Mode != "passnet" {
		reply(wire.TErr, []byte("snap: not a passnet node"))
		return
	}
	n.mu.Lock()
	b, err := n.view.Encode()
	n.mu.Unlock()
	if err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	reply(wire.TSnapOK, b)
}

// handleRecover computes, on this node's current ring, every placement
// the requesting seat should hold out of what this node stores — the
// DHT's cold-rejoin transfer. The requester is marked live (it is
// provably up: it asked).
func (n *Node) handleRecover(payload []byte, reply func(wire.Type, []byte)) {
	if n.cfg.Mode != "dht" {
		reply(wire.TErr, []byte("recover: not a dht node"))
		return
	}
	if len(payload) != 4 {
		reply(wire.TErr, []byte("recover: want 4-byte seat"))
		return
	}
	seat := int32(binary.LittleEndian.Uint32(payload))
	n.mu.Lock()
	n.alive[seat] = true
	msgs := n.placementsForLocked(seat)
	n.mu.Unlock()
	b, err := json.Marshal(msgs)
	if err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	reply(wire.TRecoverOK, b)
}

// placementsForLocked scans every record and attribute posting this node
// holds (primary and replica buckets alike) and keeps those whose
// placement walk on the current ring includes the given seat. Caller
// holds n.mu.
func (n *Node) placementsForLocked(seat int32) []storeMsg {
	msgs := []storeMsg{}
	seenRec := make(map[provenance.ID]bool)
	addRec := func(id provenance.ID, rec *provenance.Record) {
		if seenRec[id] {
			return
		}
		seenRec[id] = true
		seats := n.liveSuccessors(ringPosBytes(id[:]), 1+replicaFanout)
		if pos := seatIndex(seats, seat); pos >= 0 {
			msgs = append(msgs, storeMsg{
				Kind: "rec", Replica: pos > 0, Src: seats[0], Rec: rec.Encode(),
			})
		}
	}
	for _, id := range n.store.IDs() {
		rec, _ := n.store.Get(id)
		addRec(id, rec)
	}
	for _, rs := range n.replRecs {
		for _, id := range rs.IDs() {
			rec, _ := rs.Get(id)
			addRec(id, rec)
		}
	}
	seenAttr := make(map[string]bool)
	addAttrs := func(mk string, ids []provenance.ID) {
		seats := n.liveSuccessors(ringPosBytes([]byte(mk)), 1+replicaFanout)
		pos := seatIndex(seats, seat)
		if pos < 0 {
			return
		}
		for _, id := range ids {
			k := mk + string(id[:])
			if seenAttr[k] {
				continue
			}
			seenAttr[k] = true
			msgs = append(msgs, storeMsg{
				Kind: "attr", Replica: pos > 0, Src: seats[0], MK: []byte(mk), ID: id,
			})
		}
	}
	for mk, ids := range n.attrs {
		addAttrs(mk, ids)
	}
	for _, bucket := range n.replAttrs {
		for mk, ids := range bucket {
			addAttrs(mk, ids)
		}
	}
	return msgs
}

func seatIndex(seats []int32, seat int32) int {
	for i, s := range seats {
		if s == seat {
			return i
		}
	}
	return -1
}
