package node

import (
	"fmt"
	"net"
	"testing"
	"time"

	"pass/internal/provenance"
)

// bootCluster starts n in-process nodes of the given mode, distributes
// the roster, and returns them with a client. In-process here means the
// Node objects share this test binary, but every verb still crosses a
// real UDP socket.
func bootCluster(t *testing.T, mode string, n int) ([]*Node, *Client) {
	t.Helper()
	nodes := make([]*Node, 0, n)
	roster := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		nd, err := New(Config{ID: int32(i), Mode: mode, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("boot node %d: %v", i, err)
		}
		t.Cleanup(nd.Close)
		nodes = append(nodes, nd)
		roster = append(roster, Peer{ID: int32(i), Addr: nd.Addr().String()})
	}
	c, err := NewClient(int32(n) + 100)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(c.Close)
	for _, nd := range nodes {
		if err := c.SetPeers(nd.Addr(), roster); err != nil {
			t.Fatalf("roster to node %d: %v", nd.cfg.ID, err)
		}
	}
	return nodes, c
}

func testRecord(t *testing.T, seq int, domain string) *provenance.Record {
	t.Helper()
	var digest [32]byte
	digest[0], digest[1] = byte(seq), byte(seq>>8)
	rec, _, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(seq))),
			provenance.Attr(provenance.KeyDomain, provenance.String(domain)),
		).
		CreatedAt(int64(seq) + 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func tickAll(t *testing.T, c *Client, nodes []*Node) {
	t.Helper()
	for _, nd := range nodes {
		if err := c.Tick(nd.Addr()); err != nil {
			t.Fatalf("tick node %d: %v", nd.cfg.ID, err)
		}
	}
}

func queryRecall(t *testing.T, c *Client, at *net.UDPAddr, domain string, want map[provenance.ID]bool) float64 {
	t.Helper()
	got, err := c.QueryAttr(at, provenance.KeyDomain, provenance.String(domain))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	hit := 0
	for _, id := range got {
		if want[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func testModePutTickQueryGet(t *testing.T, mode string) {
	nodes, c := bootCluster(t, mode, 4)
	const nPubs = 12
	domain := "t-" + mode
	acked := make(map[provenance.ID]bool, nPubs)
	var firstID provenance.ID
	for i := 0; i < nPubs; i++ {
		rec := testRecord(t, i, domain)
		id, err := c.Put(nodes[i%len(nodes)].Addr(), rec)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
		if i == 0 {
			firstID = id
		}
	}
	tickAll(t, c, nodes)
	// Query through EVERY node: after one gossip round (passnet) or by
	// ring placement (dht), each contact must reach the full set.
	for _, nd := range nodes {
		if r := queryRecall(t, c, nd.Addr(), domain, acked); r != 1.0 {
			t.Errorf("recall via node %d = %.3f, want 1.0", nd.cfg.ID, r)
		}
	}
	// Get from a node that did not originate the record.
	rec, err := c.Get(nodes[3].Addr(), firstID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got := rec.ComputeID(); got != firstID {
		t.Fatalf("get returned wrong record: %x != %x", got[:4], firstID[:4])
	}
	// Stat reflects the mode and some traffic.
	st, err := c.Stat(nodes[0].Addr())
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Mode != mode || st.Peers != 3 || st.MsgsIn == 0 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestPassnetPutTickQueryGet(t *testing.T) { testModePutTickQueryGet(t, "passnet") }
func TestDHTPutTickQueryGet(t *testing.T)     { testModePutTickQueryGet(t, "dht") }

// TestDHTSurvivesKilledNode is the in-process E16 analogue: publish
// through a 5-seat ring, hard-kill one node (socket closed, no
// goodbye), run a probe round, and require the remaining seats to
// recover full recall from replicas.
func TestDHTSurvivesKilledNode(t *testing.T) {
	nodes, c := bootCluster(t, "dht", 5)
	const nPubs = 20
	acked := make(map[provenance.ID]bool, nPubs)
	for i := 0; i < nPubs; i++ {
		id, err := c.Put(nodes[i%len(nodes)].Addr(), testRecord(t, i, "churn"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
	}
	victim := nodes[2]
	victim.Close()
	tickAll(t, c, append(append([]*Node(nil), nodes[:2]...), nodes[3:]...))
	for _, nd := range nodes {
		if nd == victim {
			continue
		}
		if r := queryRecall(t, c, nd.Addr(), "churn", acked); r != 1.0 {
			t.Errorf("post-kill recall via node %d = %.3f, want 1.0 (replicas)", nd.cfg.ID, r)
		}
	}
}

// TestPassnetPartitionThenHeal drives the harness's partition primitive:
// rate-1 drop rules on both sides of a cut, verify the split is real,
// heal, and verify gossip converges again.
func TestPassnetPartitionThenHeal(t *testing.T) {
	nodes, c := bootCluster(t, "passnet", 3)
	// Cut node 2 off from 0 and 1 in both directions.
	cut := []DropRule{{From: 0, Rate: 1, Seed: 1}, {From: 1, Rate: 1, Seed: 2}}
	if err := c.SetDrops(nodes[2].Addr(), cut); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes[:2] {
		if err := c.SetDrops(nd.Addr(), []DropRule{{From: 2, Rate: 1, Seed: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	acked := make(map[provenance.ID]bool)
	for i := 0; i < 6; i++ {
		id, err := c.Put(nodes[i%2].Addr(), testRecord(t, i, "split"))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
	}
	tickAll(t, c, nodes)
	// The isolated node sees nothing (its own postings are empty and its
	// view never learned the others' deltas).
	if r := queryRecall(t, c, nodes[2].Addr(), "split", acked); r != 0 {
		t.Errorf("recall across partition = %.3f, want 0", r)
	}
	// Heal: clear every rule, gossip again (the majority side's outboxes
	// kept the undelivered deltas), and the view converges.
	for _, nd := range nodes {
		var clear []DropRule
		for id := int32(0); id < 3; id++ {
			clear = append(clear, DropRule{From: id, Rate: 0})
		}
		if err := c.SetDrops(nd.Addr(), clear); err != nil {
			t.Fatal(err)
		}
	}
	tickAll(t, c, nodes)
	if r := queryRecall(t, c, nodes[2].Addr(), "split", acked); r != 1.0 {
		t.Errorf("recall after heal = %.3f, want 1.0", r)
	}
}

// TestPassnetGossipIsInSequence pins the outbox discipline: deltas
// blocked by a dead peer are retained and delivered in order once the
// peer returns, never skipped (siteview refuses gaps).
func TestPassnetGossipIsInSequence(t *testing.T) {
	nodes, c := bootCluster(t, "passnet", 2)
	// Block 1's ingress from 0, publish twice at 0, tick (delivery
	// fails, outbox retains both, in order).
	if err := c.SetDrops(nodes[1].Addr(), []DropRule{{From: 0, Rate: 1, Seed: 9}}); err != nil {
		t.Fatal(err)
	}
	acked := make(map[provenance.ID]bool)
	for i := 0; i < 2; i++ {
		id, err := c.Put(nodes[0].Addr(), testRecord(t, i, "seq"))
		if err != nil {
			t.Fatal(err)
		}
		acked[id] = true
	}
	tickAll(t, c, nodes)
	if r := queryRecall(t, c, nodes[1].Addr(), "seq", acked); r != 0 {
		t.Fatalf("blocked peer learned deltas anyway (recall %.3f)", r)
	}
	if err := c.SetDrops(nodes[1].Addr(), []DropRule{{From: 0, Rate: 0}}); err != nil {
		t.Fatal(err)
	}
	tickAll(t, c, nodes)
	if r := queryRecall(t, c, nodes[1].Addr(), "seq", acked); r != 1.0 {
		t.Fatalf("recall after unblock = %.3f, want 1.0", r)
	}
	st, err := c.Stat(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 2 {
		t.Fatalf("origin seq = %d, want 2", st.Seq)
	}
}

func TestClientPingAndBadMode(t *testing.T) {
	nodes, c := bootCluster(t, "dht", 1)
	if err := c.Ping(nodes[0].Addr()); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := New(Config{ID: 9, Mode: "carrier-pigeon", Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	// A dead address times out rather than hanging.
	dead, err := net.ResolveUDPAddr("udp", fmt.Sprintf("127.0.0.1:%d", 1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Ping(dead); err == nil {
		t.Fatal("ping to dead address succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("ping timeout took too long")
	}
}
