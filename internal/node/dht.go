package node

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sort"

	"pass/internal/arch"
	"pass/internal/provenance"
	"pass/internal/wire"
)

// The dht mode places records and attribute postings on a static ring
// of node IDs using the SAME position formula as the in-process dht
// model, so a seeded schedule lands keys on the same logical seats on
// either backend. Placement is primary + two replicas along the live
// successor list; liveness is learned by TPing probes during TTick
// (and only there — see the comment above storeMsg). Queries walk
// the same successor list, so a killed primary's keys stay answerable
// from whichever replica holder the walk reaches first — the
// real-process counterpart of the model's Stabilize recovery in E16.

// replicaFanout is how many successors past the primary hold copies
// (the dht model's ReplicaFanout).
const replicaFanout = 2

// ringSeat is one node's position on the placement ring.
type ringSeat struct {
	id  int32
	pos uint64
}

// ringPosOfNode must match dht.ringPosOfSite exactly: the conformance
// cross-check relies on both backends placing keys identically.
func ringPosOfNode(id int32) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(id)+0x5851F42D4C957F2D)
	return ringPosBytes(buf[:])
}

// ringPosBytes must match dht.ringPos: sha256, first 8 bytes LE.
func ringPosBytes(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.LittleEndian.Uint64(sum[:8])
}

// rebuildRing recomputes the full ring (self + peers). Caller holds n.mu.
func (n *Node) rebuildRing() {
	n.ring = n.ring[:0]
	n.ring = append(n.ring, ringSeat{n.cfg.ID, ringPosOfNode(n.cfg.ID)})
	for _, pid := range n.order {
		n.ring = append(n.ring, ringSeat{pid, ringPosOfNode(pid)})
		if _, ok := n.alive[pid]; !ok {
			n.alive[pid] = true
		}
	}
	sort.Slice(n.ring, func(i, j int) bool { return n.ring[i].pos < n.ring[j].pos })
}

// liveSuccessors returns up to k live node IDs clockwise from hash
// (self counts as live). Caller holds n.mu.
func (n *Node) liveSuccessors(hash uint64, k int) []int32 {
	if len(n.ring) == 0 {
		return nil
	}
	start := sort.Search(len(n.ring), func(i int) bool { return n.ring[i].pos >= hash })
	out := make([]int32, 0, k)
	for i := 0; i < len(n.ring) && len(out) < k; i++ {
		seat := n.ring[(start+i)%len(n.ring)]
		if seat.id != n.cfg.ID && !n.alive[seat.id] {
			continue
		}
		out = append(out, seat.id)
	}
	return out
}

// Liveness is learned ONLY from tick-time TPing probes (dhtTick), never
// inferred from placement or query timeouts: under packet loss a
// retry-exhausted request to a live peer is common enough that treating
// it as death routes later keys around healthy seats and diverges from
// the netsim rows (the model, likewise, only learns death from
// Stabilize probes). A request that fails against a seat simply falls
// through to the next seat in the walk.

// storeMsg is the TStore payload: a record or an attribute posting,
// placed as primary or replica. Src keys the replica bucket (the
// primary seat the copy shadows), matching the model's per-source
// replica buckets.
type storeMsg struct {
	Kind    string        `json:"kind"` // "rec" or "attr"
	Replica bool          `json:"replica"`
	Src     int32         `json:"src"`
	Rec     []byte        `json:"rec,omitempty"`
	MK      []byte        `json:"mk,omitempty"`
	ID      provenance.ID `json:"id,omitempty"`
}

// handleStore accepts one placement: apply, WAL-log, then acknowledge —
// a placement a peer saw acknowledged survives this node's crash.
func (n *Node) handleStore(payload []byte, reply func(wire.Type, []byte)) {
	if n.cfg.Mode != "dht" {
		reply(wire.TErr, []byte("store: not a dht node"))
		return
	}
	var msg storeMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	n.mu.Lock()
	err := n.applyStoreLocked(msg)
	if err == nil {
		n.walAppend('s', payload)
	}
	n.mu.Unlock()
	if err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	reply(wire.TStoreOK, nil)
}

// applyStoreLocked is the placement mutation proper — shared by the live
// TStore verb, WAL replay, and the catch-up pull. Caller holds n.mu (or
// is in single-threaded recovery).
func (n *Node) applyStoreLocked(msg storeMsg) error {
	switch msg.Kind {
	case "rec":
		rec, err := provenance.Decode(msg.Rec)
		if err != nil {
			return err
		}
		id := rec.ComputeID()
		if msg.Replica {
			n.replicaStoreFor(msg.Src).Add(id, rec)
		} else {
			n.store.Add(id, rec)
		}
	case "attr":
		mk := string(msg.MK)
		if msg.Replica {
			bucket := n.replAttrs[msg.Src]
			if bucket == nil {
				bucket = make(map[string][]provenance.ID)
				n.replAttrs[msg.Src] = bucket
			}
			bucket[mk] = append(bucket[mk], msg.ID)
		} else {
			n.attrs[mk] = append(n.attrs[mk], msg.ID)
		}
	default:
		return fmt.Errorf("store: unknown kind %q", msg.Kind)
	}
	return nil
}

// replicaStoreFor returns (creating if needed) the replica record
// bucket shadowing the given primary seat. Caller holds n.mu.
func (n *Node) replicaStoreFor(src int32) *arch.SiteStore {
	rs, ok := n.replRecs[src]
	if !ok {
		rs = arch.NewSiteStore()
		n.replRecs[src] = rs
	}
	return rs
}

// place ships one storeMsg to a seat (or applies it locally when the
// seat is this node). Returns false on timeout.
func (n *Node) place(seat int32, msg storeMsg) bool {
	if seat == n.cfg.ID {
		b, _ := json.Marshal(msg)
		ok := true
		n.handleStore(b, func(t wire.Type, _ []byte) { ok = t == wire.TStoreOK })
		return ok
	}
	n.mu.Lock()
	addr := n.peers[seat]
	n.mu.Unlock()
	if addr == nil {
		return false
	}
	b, _ := json.Marshal(msg)
	if _, err := n.ep.RequestRetry(addr, wire.TStore, b, sendRetries); err != nil {
		return false
	}
	return true
}

// dhtPut places the record and each of its queriable attribute postings
// at the first live successor of their hashes, with replicaFanout
// copies on the following seats. The put acks once the record's primary
// placement lands; replicas and postings are best-effort (the model's
// charged-but-async replication).
func (n *Node) dhtPut(id provenance.ID, rec *provenance.Record, raw []byte, reply func(wire.Type, []byte)) {
	n.mu.Lock()
	recSeats := n.liveSuccessors(ringPosBytes(id[:]), 1+replicaFanout)
	n.mu.Unlock()
	if len(recSeats) == 0 {
		reply(wire.TErr, []byte("put: empty ring"))
		return
	}
	primary := recSeats[0]
	if !n.place(primary, storeMsg{Kind: "rec", Src: primary, Rec: raw}) {
		// Primary unreachable: retry placement down the (now shorter)
		// live list rather than failing the publish.
		n.mu.Lock()
		recSeats = n.liveSuccessors(ringPosBytes(id[:]), 1+replicaFanout)
		n.mu.Unlock()
		if len(recSeats) == 0 || !n.place(recSeats[0], storeMsg{Kind: "rec", Src: recSeats[0], Rec: raw}) {
			reply(wire.TErr, []byte("put: home unreachable"))
			return
		}
		primary = recSeats[0]
	}
	for _, seat := range recSeats[1:] {
		n.place(seat, storeMsg{Kind: "rec", Replica: true, Src: primary, Rec: raw})
	}
	for _, a := range arch.QueriableAttrs(rec) {
		mk := []byte(mkOf(a))
		n.mu.Lock()
		attrSeats := n.liveSuccessors(ringPosBytes(mk), 1+replicaFanout)
		n.mu.Unlock()
		for i, seat := range attrSeats {
			n.place(seat, storeMsg{
				Kind: "attr", Replica: i > 0, Src: attrSeats[0], MK: mk, ID: id,
			})
		}
	}
	reply(wire.TPutOK, id[:])
}

// dhtQuery walks the successor list of the key's hash and returns the
// first reachable seat's answer (primary plus replica postings — see
// handleAttrQ), so a dead primary falls through to a replica holder.
func (n *Node) dhtQuery(mk string, reply func(wire.Type, []byte)) {
	n.mu.Lock()
	seats := n.liveSuccessors(ringPosBytes([]byte(mk)), 1+replicaFanout)
	n.mu.Unlock()
	for _, seat := range seats {
		if seat == n.cfg.ID {
			var out []byte
			n.handleAttrQ([]byte(mk), func(_ wire.Type, p []byte) { out = p })
			reply(wire.TQueryOK, out)
			return
		}
		n.mu.Lock()
		addr := n.peers[seat]
		n.mu.Unlock()
		if addr == nil {
			continue
		}
		resp, err := n.ep.RequestRetry(addr, wire.TAttrQ, []byte(mk), sendRetries)
		if err != nil {
			continue
		}
		reply(wire.TQueryOK, resp.Payload)
		return
	}
	reply(wire.TErr, []byte("query: no reachable seat"))
}

// dhtGet fetches the record from the successor list of its ID hash.
func (n *Node) dhtGet(id provenance.ID, reply func(wire.Type, []byte)) {
	n.mu.Lock()
	seats := n.liveSuccessors(ringPosBytes(id[:]), 1+replicaFanout)
	n.mu.Unlock()
	for _, seat := range seats {
		if seat == n.cfg.ID {
			n.handleFetch(id[:], func(t wire.Type, p []byte) {
				if t == wire.TFetchOK {
					reply(wire.TGetOK, p)
				} else {
					reply(t, p)
				}
			})
			return
		}
		n.mu.Lock()
		addr := n.peers[seat]
		n.mu.Unlock()
		if addr == nil {
			continue
		}
		resp, err := n.ep.RequestRetry(addr, wire.TFetch, id[:], sendRetries)
		if err != nil {
			continue
		}
		reply(wire.TGetOK, resp.Payload)
		return
	}
	reply(wire.TErr, []byte("get: no reachable seat"))
}

// dhtTick probes every peer with TPing and refreshes the liveness map —
// the maintenance round that lets routing skip killed nodes, standing
// in for the model's Stabilize.
func (n *Node) dhtTick(reply func(wire.Type, []byte)) {
	n.mu.Lock()
	type probe struct {
		id   int32
		addr *net.UDPAddr
	}
	probes := make([]probe, 0, len(n.peers))
	for _, pid := range n.order {
		probes = append(probes, probe{pid, n.peers[pid]})
	}
	n.mu.Unlock()
	for _, p := range probes {
		_, err := n.ep.RequestRetry(p.addr, wire.TPing, nil, sendRetries)
		n.mu.Lock()
		n.alive[p.id] = err == nil
		n.mu.Unlock()
	}
	reply(wire.TTickOK, nil)
}
