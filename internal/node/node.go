// Package node is a real PASS node: the state and verb handlers behind
// `passd node`. One process holds one Node; the cluster harness (or any
// wire client) drives it over UDP with the envelope types in
// internal/wire — TPut/TGet/TQuery for data, TTick/TDrop/TStat/TPeers
// for control — while nodes talk to each other with the inter-node
// verbs (TDelta for passnet gossip, TStore/TAttrQ/TFetch/TPing for DHT
// placement, probing and fetch).
//
// Two modes mirror the two socket-capable architectures:
//
//   - "passnet": the node keeps a local store plus its own
//     siteview.View; publishes cut per-publish deltas that gossip to
//     every peer in strict per-origin sequence (the passnet model's
//     outbox discipline), and queries union the local postings with
//     TAttrQ calls to the view's candidate peers.
//   - "dht": node IDs hash onto the same ring as the dht model
//     (identical position formula), records and attribute postings are
//     placed at the first three live successors of their hash (one
//     primary + two replicas, the model's SuccessorListLen/
//     ReplicaFanout shape), and queries fall along the successor list —
//     so a SIGKILLed node's keys stay answerable from replicas, the
//     real-process analogue of experiment E16.
//
// Peer rosters arrive AFTER boot via TPeers: every node binds an
// ephemeral port, prints it, and the harness distributes the collected
// roster — no port preallocation races.
package node

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/wal"
	"pass/internal/wire"
)

// sendRetries is the retransmission budget for inter-node requests,
// matching the models' arch.SendRetries convention: one send plus up to
// three retransmissions. The cross-check depends on this parity — with
// a thinner budget the real side misdeclares lossy peers dead and
// diverges from the netsim rows.
const sendRetries = 3

// Config parameterises one node.
type Config struct {
	ID     int32  // dense node ID; doubles as the wire From and the ring seat
	Mode   string // "passnet" or "dht"
	Listen string // UDP listen address ("127.0.0.1:0" for ephemeral)
	Seed   uint64 // reserved for seeded behaviours (drop rules arrive seeded via TDrop)

	// DataDir, when set, makes the node durable: every applied mutation
	// is WAL-appended before acknowledgment and compacted into a
	// snapshot, and a restart recovers from both (see durable.go).
	DataDir string
	// Fsync syncs the WAL on every append — durability against machine
	// crash, not just process death, at a large latency cost.
	Fsync bool
	// CompactEvery is the WAL record count that triggers compaction
	// (defaultCompactEvery when zero).
	CompactEvery int64
}

// Peer is one roster entry, as distributed via TPeers.
type Peer struct {
	ID   int32  `json:"id"`
	Addr string `json:"addr"`
}

// DropRule is one TDrop entry: ingress datagrams from peer From are
// dropped with probability Rate (seeded). Rate 1 is a partition edge.
type DropRule struct {
	From int32   `json:"from"`
	Rate float64 `json:"rate"`
	Seed uint64  `json:"seed"`
}

// Status is the TStat response.
type Status struct {
	ID      int32  `json:"id"`
	Mode    string `json:"mode"`
	Records int    `json:"records"`
	Peers   int    `json:"peers"`
	Alive   int    `json:"alive"` // dht: peers believed live (incl. self)
	Seq     uint64 `json:"seq"`   // passnet: own delta sequence
	MsgsIn  int64  `json:"msgs_in"`
	MsgsOut int64  `json:"msgs_out"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	Dropped int64  `json:"dropped"`

	// Durability (zero-valued without a data dir).
	Recovered  bool  `json:"recovered,omitempty"`   // boot restored state from disk
	CatchingUp bool  `json:"catching_up,omitempty"` // declared degraded mode until first pull
	WalRecords int64 `json:"wal_records,omitempty"`
	WalBytes   int64 `json:"wal_bytes,omitempty"`
}

// wireDelta is the JSON form of a siteview delta on the wire.
type wireDelta struct {
	Origin int32    `json:"origin"`
	Seq    uint64   `json:"seq"`
	IDs    [][]byte `json:"ids"`
	Attrs  []string `json:"attrs"`
}

// Node is one running PASS node.
type Node struct {
	cfg Config
	ep  *wire.Endpoint
	reg *metrics.Registry

	mu    sync.Mutex
	peers map[int32]*net.UDPAddr
	order []int32 // sorted peer IDs

	// passnet state.
	store  *arch.SiteStore
	posts  map[string][]provenance.ID // composite attr key -> local postings
	view   *siteview.View
	seq    uint64
	outbox map[int32][]*siteview.Delta

	// durability state (durable.go); log is nil without a data dir.
	log       *wal.Log
	acked     map[int32]uint64           // per-peer highest own seq acknowledged
	own       map[uint64]*siteview.Delta // retained own deltas (outbox rebuild window)
	recovered bool                       // state came back from disk at boot
	catchup   bool                       // cold boot: pull state at first tick

	// dht state (see dht.go).
	ring      []ringSeat
	alive     map[int32]bool
	attrs     map[string][]provenance.ID
	replAttrs map[int32]map[string][]provenance.ID
	replRecs  map[int32]*arch.SiteStore
}

// New binds the node's UDP endpoint and installs its verb handlers.
func New(cfg Config) (*Node, error) {
	if cfg.Mode != "passnet" && cfg.Mode != "dht" {
		return nil, fmt.Errorf("node: unknown mode %q", cfg.Mode)
	}
	ep, err := wire.NewEndpoint(cfg.ID, cfg.Listen)
	if err != nil {
		return nil, err
	}
	// Inter-node requests ride loopback or LAN; a tight per-attempt
	// deadline keeps ticks against dead or lossy peers from crawling.
	ep.Timeout = 120 * time.Millisecond
	n := &Node{
		cfg:       cfg,
		ep:        ep,
		reg:       metrics.NewRegistry(),
		peers:     make(map[int32]*net.UDPAddr),
		store:     arch.NewSiteStore(),
		posts:     make(map[string][]provenance.ID),
		view:      siteview.NewView(netsim.SiteID(cfg.ID)),
		outbox:    make(map[int32][]*siteview.Delta),
		acked:     make(map[int32]uint64),
		own:       make(map[uint64]*siteview.Delta),
		alive:     make(map[int32]bool),
		attrs:     make(map[string][]provenance.ID),
		replAttrs: make(map[int32]map[string][]provenance.ID),
		replRecs:  make(map[int32]*arch.SiteStore),
	}
	// Recovery runs BEFORE the handler is installed: the node state the
	// first verb sees is already the replayed one.
	if cfg.DataDir != "" {
		if err := n.recoverData(); err != nil {
			ep.Close()
			return nil, err
		}
	}
	ep.Handle(n.handle)
	return n, nil
}

// Recovered reports whether boot restored state from the data dir.
func (n *Node) Recovered() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.recovered
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.ep.Addr() }

// Registry exposes the node's metrics registry (passd serves it).
func (n *Node) Registry() *metrics.Registry { return n.reg }

// Close shuts the node's socket down and syncs and closes its WAL.
func (n *Node) Close() {
	n.ep.Close()
	n.mu.Lock()
	if n.log != nil {
		n.log.Close()
	}
	n.mu.Unlock()
}

// SyncMetrics refreshes the registry gauges from live node state; the
// HTTP /metrics handler calls it before exposition.
func (n *Node) SyncMetrics() {
	in, out, bin, bout := n.ep.Stats()
	n.reg.Gauge("pass_node_msgs_in").Set(in)
	n.reg.Gauge("pass_node_msgs_out").Set(out)
	n.reg.Gauge("pass_node_bytes_in").Set(bin)
	n.reg.Gauge("pass_node_bytes_out").Set(bout)
	n.reg.Gauge("pass_node_dropped").Set(n.ep.Dropped())
	n.mu.Lock()
	n.reg.Gauge("pass_node_records").Set(int64(n.store.Len()))
	n.reg.Gauge("pass_node_peers").Set(int64(len(n.peers)))
	if n.catchup {
		n.reg.Gauge("pass_node_catching_up").Set(1)
	} else {
		n.reg.Gauge("pass_node_catching_up").Set(0)
	}
	if n.log != nil {
		n.reg.Gauge("pass_wal_live_records").Set(n.log.Count())
		n.reg.Gauge("pass_wal_live_bytes").Set(n.log.Size())
	}
	n.mu.Unlock()
}

// handle dispatches one inbound verb. It runs on a fresh goroutine per
// message (the endpoint guarantees that), so slow verbs — a TTick that
// gossips to every peer — never stall ingestion.
func (n *Node) handle(env wire.Envelope, from *net.UDPAddr, reply func(wire.Type, []byte)) {
	switch env.Type {
	case wire.TPeers:
		n.handlePeers(env.Payload, reply)
	case wire.TDrop:
		n.handleDrop(env.Payload, reply)
	case wire.TStat:
		n.handleStat(reply)
	case wire.TPing:
		reply(wire.TPong, nil)
	case wire.TPut:
		n.handlePut(env.Payload, reply)
	case wire.TGet:
		n.handleGet(env.Payload, reply)
	case wire.TQuery:
		n.handleQuery(env.Payload, reply)
	case wire.TFetch:
		n.handleFetch(env.Payload, reply)
	case wire.TAttrQ:
		n.handleAttrQ(env.Payload, reply)
	case wire.TTick:
		n.handleTick(reply)
	case wire.TDelta:
		n.handleDelta(env.Payload, reply)
	case wire.TStore:
		n.handleStore(env.Payload, reply)
	case wire.TSnap:
		n.handleSnap(reply)
	case wire.TRecover:
		n.handleRecover(env.Payload, reply)
	default:
		reply(wire.TErr, []byte(fmt.Sprintf("unknown verb %d", env.Type)))
	}
}

// ---- control plane ----

func (n *Node) handlePeers(payload []byte, reply func(wire.Type, []byte)) {
	var roster []Peer
	if err := json.Unmarshal(payload, &roster); err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	n.mu.Lock()
	if err := n.setRosterLocked(roster); err != nil {
		n.mu.Unlock()
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	n.walAppend('r', payload)
	n.mu.Unlock()
	reply(wire.TPeersOK, nil)
}

// setRosterLocked installs a peer roster — the shared body of the TPeers
// verb and the durable recovery paths ('r' WAL records, snapshots).
// Caller holds n.mu (or is in single-threaded recovery).
func (n *Node) setRosterLocked(roster []Peer) error {
	n.peers = make(map[int32]*net.UDPAddr, len(roster))
	n.order = n.order[:0]
	for _, p := range roster {
		if p.ID == n.cfg.ID {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", p.Addr)
		if err != nil {
			return err
		}
		n.peers[p.ID] = addr
		n.order = append(n.order, p.ID)
	}
	sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
	if n.cfg.Mode == "dht" {
		n.rebuildRing()
	}
	return nil
}

func (n *Node) handleDrop(payload []byte, reply func(wire.Type, []byte)) {
	var rules []DropRule
	if err := json.Unmarshal(payload, &rules); err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	for _, r := range rules {
		n.ep.SetDrop(r.From, r.Rate, r.Seed)
	}
	reply(wire.TDropOK, nil)
}

func (n *Node) handleStat(reply func(wire.Type, []byte)) {
	in, out, bin, bout := n.ep.Stats()
	n.mu.Lock()
	st := Status{
		ID: n.cfg.ID, Mode: n.cfg.Mode,
		Records: n.store.Len(), Peers: len(n.peers),
		Seq: n.seq, MsgsIn: in, MsgsOut: out,
		BytesIn: bin, BytesOut: bout, Dropped: n.ep.Dropped(),
		Recovered: n.recovered, CatchingUp: n.catchup,
	}
	if n.log != nil {
		st.WalRecords = n.log.Count()
		st.WalBytes = n.log.Size()
	}
	if n.cfg.Mode == "dht" {
		st.Alive = 1 // self
		for _, up := range n.alive {
			if up {
				st.Alive++
			}
		}
	}
	n.mu.Unlock()
	b, _ := json.Marshal(st)
	reply(wire.TStatOK, b)
}

// ---- shared data-plane helpers ----

// mkOf builds the composite attribute-index key passnet and dht use
// everywhere: key \x00 canonical value.
func mkOf(a provenance.Attribute) string {
	return a.Key + "\x00" + string(a.Value.Canonical())
}

// idsPayload flattens record IDs for a TQueryOK/TAttrQOK payload.
func idsPayload(ids []provenance.ID) []byte {
	out := make([]byte, 0, len(ids)*32)
	for _, id := range ids {
		out = append(out, id[:]...)
	}
	return out
}

// ParseIDs decodes a TQueryOK/TAttrQOK payload back into record IDs.
func ParseIDs(payload []byte) []provenance.ID {
	ids := make([]provenance.ID, 0, len(payload)/32)
	for i := 0; i+32 <= len(payload); i += 32 {
		var id provenance.ID
		copy(id[:], payload[i:i+32])
		ids = append(ids, id)
	}
	return ids
}

// dedupe removes duplicate IDs preserving first-seen order.
func dedupe(ids []provenance.ID) []provenance.ID {
	seen := make(map[provenance.ID]struct{}, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// ---- data plane: verb entry points dispatch by mode ----

func (n *Node) handlePut(payload []byte, reply func(wire.Type, []byte)) {
	rec, err := provenance.Decode(payload)
	if err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	id := rec.ComputeID()
	if n.cfg.Mode == "dht" {
		n.dhtPut(id, rec, payload, reply)
		return
	}
	n.passnetPut(id, rec, reply)
}

func (n *Node) handleGet(payload []byte, reply func(wire.Type, []byte)) {
	if len(payload) != 32 {
		reply(wire.TErr, []byte("get: want 32-byte ID"))
		return
	}
	var id provenance.ID
	copy(id[:], payload)
	if n.cfg.Mode == "dht" {
		n.dhtGet(id, reply)
		return
	}
	n.passnetGet(id, reply)
}

func (n *Node) handleQuery(payload []byte, reply func(wire.Type, []byte)) {
	mk := string(payload)
	if n.cfg.Mode == "dht" {
		n.dhtQuery(mk, reply)
		return
	}
	n.passnetQuery(mk, reply)
}

func (n *Node) handleTick(reply func(wire.Type, []byte)) {
	// A cold-booted durable node pulls its state before doing round work.
	n.catchUpIfDue()
	if n.cfg.Mode == "dht" {
		n.dhtTick(reply)
		return
	}
	n.passnetTick(reply)
}

// handleFetch serves a record from the local store (and, for dht, the
// replica buckets) — the inter-node half of Get.
func (n *Node) handleFetch(payload []byte, reply func(wire.Type, []byte)) {
	if len(payload) != 32 {
		reply(wire.TErr, []byte("fetch: want 32-byte ID"))
		return
	}
	var id provenance.ID
	copy(id[:], payload)
	n.mu.Lock()
	rec, ok := n.store.Get(id)
	if !ok && n.cfg.Mode == "dht" {
		for _, rs := range n.replRecs {
			if rec, ok = rs.Get(id); ok {
				break
			}
		}
	}
	n.mu.Unlock()
	if !ok {
		reply(wire.TErr, []byte("fetch: not found"))
		return
	}
	reply(wire.TFetchOK, rec.Encode())
}

// handleAttrQ answers an attribute query from local state only: the
// node's own postings (passnet) or its primary+replica postings (dht).
func (n *Node) handleAttrQ(payload []byte, reply func(wire.Type, []byte)) {
	mk := string(payload)
	n.mu.Lock()
	var ids []provenance.ID
	ids = append(ids, n.posts[mk]...)
	if n.cfg.Mode == "dht" {
		ids = append(ids, n.attrs[mk]...)
		for _, bucket := range n.replAttrs {
			ids = append(ids, bucket[mk]...)
		}
	}
	n.mu.Unlock()
	reply(wire.TAttrQOK, idsPayload(dedupe(ids)))
}

// ---- passnet mode ----

// passnetPut commits locally, advances the node's own delta sequence,
// and enqueues the delta for every peer — the model's publish path with
// the gossip deferred to the next TTick.
func (n *Node) passnetPut(id provenance.ID, rec *provenance.Record, reply func(wire.Type, []byte)) {
	n.mu.Lock()
	n.seq++
	d := n.applyOwnPublishLocked(n.seq, id, rec)
	for _, pid := range n.order {
		n.outbox[pid] = append(n.outbox[pid], d)
	}
	// Log before the ack: the durability contract is that an acknowledged
	// publish survives a crash at any later instant.
	enc := rec.Encode()
	body := make([]byte, 8+len(enc))
	binary.LittleEndian.PutUint64(body[:8], n.seq)
	copy(body[8:], enc)
	n.walAppend('p', body)
	n.mu.Unlock()
	reply(wire.TPutOK, id[:])
}

// passnetTick drains each peer's outbox in strict sequence: deltas are
// sent oldest-first with retries, and the first undelivered delta
// blocks the rest for that peer (siteview.Apply refuses gaps, so
// in-order delivery is correctness, not politeness).
func (n *Node) passnetTick(reply func(wire.Type, []byte)) {
	n.mu.Lock()
	order := append([]int32(nil), n.order...)
	n.mu.Unlock()
	for _, pid := range order {
		for {
			n.mu.Lock()
			pending := n.outbox[pid]
			if len(pending) == 0 {
				n.mu.Unlock()
				break
			}
			d := pending[0]
			addr := n.peers[pid]
			n.mu.Unlock()
			b, _ := json.Marshal(wireDelta{
				Origin: int32(d.Origin), Seq: d.Seq,
				IDs: idsBytes(d.IDs), Attrs: d.AttrKeys,
			})
			if _, err := n.ep.RequestRetry(addr, wire.TDelta, b, sendRetries); err != nil {
				break // peer unreachable this round; keep the outbox
			}
			n.mu.Lock()
			if len(n.outbox[pid]) > 0 && n.outbox[pid][0] == d {
				n.outbox[pid] = n.outbox[pid][1:]
				// The peer acknowledged through d.Seq; log the advance so
				// a restart does not re-gossip already-delivered deltas.
				n.advanceAckedLocked(pid, d.Seq)
				var body [12]byte
				binary.LittleEndian.PutUint32(body[:4], uint32(pid))
				binary.LittleEndian.PutUint64(body[4:12], d.Seq)
				n.walAppend('a', body[:])
			}
			n.mu.Unlock()
		}
	}
	reply(wire.TTickOK, nil)
}

func idsBytes(ids []provenance.ID) [][]byte {
	out := make([][]byte, len(ids))
	for i, id := range ids {
		out[i] = append([]byte(nil), id[:]...)
	}
	return out
}

// handleDelta applies one gossiped delta to the node's view. A replayed
// delta (sequence already seen — the peer's ack was lost) is
// re-acknowledged so the sender can advance; a gap is an error.
func (n *Node) handleDelta(payload []byte, reply func(wire.Type, []byte)) {
	var wd wireDelta
	if err := json.Unmarshal(payload, &wd); err != nil {
		reply(wire.TErr, []byte(err.Error()))
		return
	}
	ids := make([]provenance.ID, len(wd.IDs))
	for i, b := range wd.IDs {
		copy(ids[i][:], b)
	}
	d := siteview.NewDelta(netsim.SiteID(wd.Origin), wd.Seq, ids, wd.Attrs)
	n.mu.Lock()
	applied := n.view.Apply(d)
	seen := n.view.Seq(d.Origin)
	if applied {
		n.walAppend('d', payload)
	} else if wd.Seq > seen && n.log != nil {
		// A gap on a durable node means its view regressed past what this
		// peer still retains (a wiped restart whose catch-up pull missed
		// this origin). Re-arm the pull: the next tick merges snapshots
		// again, fast-forwarding past the gap.
		n.catchup = true
	}
	n.mu.Unlock()
	if applied || wd.Seq <= seen {
		reply(wire.TDeltaAck, nil)
		return
	}
	reply(wire.TErr, []byte(fmt.Sprintf("delta gap: got seq %d, have %d", wd.Seq, seen)))
}

// passnetGet serves locally, else locates the record's home through the
// view and fetches it over the wire.
func (n *Node) passnetGet(id provenance.ID, reply func(wire.Type, []byte)) {
	n.mu.Lock()
	rec, ok := n.store.Get(id)
	var home netsim.SiteID
	var homeKnown bool
	if !ok {
		home, homeKnown = n.view.Locate(id)
	}
	addr := n.peers[int32(home)]
	n.mu.Unlock()
	if ok {
		reply(wire.TGetOK, rec.Encode())
		return
	}
	if !homeKnown || addr == nil {
		reply(wire.TErr, []byte("get: unknown record"))
		return
	}
	resp, err := n.ep.RequestRetry(addr, wire.TFetch, id[:], sendRetries)
	if err != nil {
		reply(wire.TErr, []byte("get: home unreachable"))
		return
	}
	reply(wire.TGetOK, resp.Payload)
}

// passnetQuery unions the node's own postings with TAttrQ answers from
// every candidate peer the view names for the key — the model's
// QueryAttr over real sockets. Unreachable candidates contribute
// nothing, exactly like a crashed site in the simulation.
func (n *Node) passnetQuery(mk string, reply func(wire.Type, []byte)) {
	n.mu.Lock()
	ids := append([]provenance.ID(nil), n.posts[mk]...)
	cands := n.view.CandidatesFor(mk)
	type target struct {
		id   int32
		addr *net.UDPAddr
	}
	var targets []target
	for _, c := range cands {
		if int32(c) == n.cfg.ID {
			continue
		}
		if addr, ok := n.peers[int32(c)]; ok {
			targets = append(targets, target{int32(c), addr})
		}
	}
	n.mu.Unlock()
	for _, tg := range targets {
		resp, err := n.ep.RequestRetry(tg.addr, wire.TAttrQ, []byte(mk), sendRetries)
		if err != nil {
			continue
		}
		ids = append(ids, ParseIDs(resp.Payload)...)
	}
	reply(wire.TQueryOK, idsPayload(dedupe(ids)))
}
