package node

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"pass/internal/provenance"
	"pass/internal/wire"
)

// Client drives nodes over the wire: the same verbs whether the nodes
// live in this process (unit tests) or in their own (the cluster
// harness). Its wire ID should sit past the node ID range so drop rules
// aimed at nodes never hit the control plane.
type Client struct {
	ep *wire.Endpoint
}

// NewClient binds a client endpoint with the given wire ID.
func NewClient(id int32) (*Client, error) {
	ep, err := wire.NewEndpoint(id, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	// Control verbs (TTick especially) fan out to every peer with
	// retries; give them room.
	ep.Timeout = 5 * time.Second
	return &Client{ep: ep}, nil
}

// Close releases the client's socket.
func (c *Client) Close() { c.ep.Close() }

// SetPeers distributes the roster to one node.
func (c *Client) SetPeers(node *net.UDPAddr, roster []Peer) error {
	b, err := json.Marshal(roster)
	if err != nil {
		return err
	}
	_, err = c.ep.RequestRetry(node, wire.TPeers, b, 2)
	return err
}

// SetDrops installs ingress drop rules on one node.
func (c *Client) SetDrops(node *net.UDPAddr, rules []DropRule) error {
	b, err := json.Marshal(rules)
	if err != nil {
		return err
	}
	_, err = c.ep.RequestRetry(node, wire.TDrop, b, 2)
	return err
}

// Put publishes one record through the given node and returns the
// acknowledged record ID.
func (c *Client) Put(node *net.UDPAddr, rec *provenance.Record) (provenance.ID, error) {
	resp, err := c.ep.Request(node, wire.TPut, rec.Encode())
	if err != nil {
		return provenance.ID{}, err
	}
	if len(resp.Payload) != 32 {
		return provenance.ID{}, fmt.Errorf("put: bad ack payload (%d bytes)", len(resp.Payload))
	}
	var id provenance.ID
	copy(id[:], resp.Payload)
	return id, nil
}

// Get fetches one record by ID through the given node.
func (c *Client) Get(node *net.UDPAddr, id provenance.ID) (*provenance.Record, error) {
	resp, err := c.ep.Request(node, wire.TGet, id[:])
	if err != nil {
		return nil, err
	}
	return provenance.Decode(resp.Payload)
}

// QueryAttr asks the given node for all record IDs carrying the
// attribute, using the composite key convention shared by passnet, dht
// and the views (key \x00 canonical value).
func (c *Client) QueryAttr(node *net.UDPAddr, key string, value provenance.Value) ([]provenance.ID, error) {
	mk := key + "\x00" + string(value.Canonical())
	resp, err := c.ep.Request(node, wire.TQuery, []byte(mk))
	if err != nil {
		return nil, err
	}
	return ParseIDs(resp.Payload), nil
}

// Tick runs one maintenance round on one node (passnet: drain gossip
// outboxes; dht: probe liveness). A round that gossips a deep outbox
// through loss retries its way along, so the deadline is generous.
func (c *Client) Tick(node *net.UDPAddr) error {
	_, err := c.ep.RequestTimeout(node, wire.TTick, nil, 60*time.Second)
	return err
}

// Stat fetches one node's status.
func (c *Client) Stat(node *net.UDPAddr) (Status, error) {
	resp, err := c.ep.Request(node, wire.TStat, nil)
	if err != nil {
		return Status{}, err
	}
	var st Status
	err = json.Unmarshal(resp.Payload, &st)
	return st, err
}

// Ping round-trips one TPing (liveness probe with a short deadline).
func (c *Client) Ping(node *net.UDPAddr) error {
	_, err := c.ep.RequestTimeout(node, wire.TPing, nil, 500*time.Millisecond)
	return err
}
