package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAppendAndWriteTo(t *testing.T) {
	l := New(8)
	l.Append(Event{Round: 1, Kind: "fault", Op: "crash", Site: 3, Model: "dht"})
	l.Append(Event{Round: 1, Kind: "round", Recall: 0.9375, Live: 15, Acked: 12})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	out := l.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if e.Op != "crash" || e.Site != 3 || e.Model != "dht" {
		t.Fatalf("round-tripped event = %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Recall != 0.9375 {
		t.Fatalf("recall did not survive encoding: %+v", e)
	}
}

func TestRingBound(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Round: i, Kind: "round"})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	// Oldest-first order, holding the most recent 4 rounds.
	lines := strings.Split(strings.TrimRight(l.String(), "\n"), "\n")
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if e.Round != 6+i {
			t.Fatalf("line %d has round %d, want %d", i, e.Round, 6+i)
		}
	}
}

func TestSinkWriteThrough(t *testing.T) {
	l := New(2)
	var sink strings.Builder
	l.SetSink(&sink)
	for i := 0; i < 5; i++ {
		l.Append(Event{Round: i, Kind: "round"})
	}
	// The sink sees every line even though the ring only holds 2.
	if got := strings.Count(sink.String(), "\n"); got != 5 {
		t.Fatalf("sink got %d lines, want 5", got)
	}
	if l.SinkErr() != nil {
		t.Fatal(l.SinkErr())
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Round: i, Kind: "round", Site: w})
				_ = l.Len()
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", l.Len())
	}
	if l.Dropped() != 8*100-64 {
		t.Fatalf("Dropped = %d, want %d", l.Dropped(), 8*100-64)
	}
	for _, line := range strings.Split(strings.TrimRight(l.String(), "\n"), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
	}
}
