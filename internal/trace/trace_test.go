package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestAppendAndWriteTo(t *testing.T) {
	l := New(8)
	l.Append(Event{Round: 1, Kind: "fault", Op: "crash", Site: 3, Model: "dht"})
	l.Append(Event{Round: 1, Kind: "round", Recall: 0.9375, Live: 15, Acked: 12})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	out := l.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if e.Op != "crash" || e.Site != 3 || e.Model != "dht" {
		t.Fatalf("round-tripped event = %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Recall != 0.9375 {
		t.Fatalf("recall did not survive encoding: %+v", e)
	}
}

func TestRingBound(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Round: i, Kind: "round"})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	// Oldest-first order, holding the most recent 4 rounds.
	lines := strings.Split(strings.TrimRight(l.String(), "\n"), "\n")
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if e.Round != 6+i {
			t.Fatalf("line %d has round %d, want %d", i, e.Round, 6+i)
		}
	}
}

func TestSinkWriteThrough(t *testing.T) {
	l := New(2)
	var sink strings.Builder
	l.SetSink(&sink)
	for i := 0; i < 5; i++ {
		l.Append(Event{Round: i, Kind: "round"})
	}
	// The sink sees every line even though the ring only holds 2.
	if got := strings.Count(sink.String(), "\n"); got != 5 {
		t.Fatalf("sink got %d lines, want 5", got)
	}
	if l.SinkErr() != nil {
		t.Fatal(l.SinkErr())
	}
}

// failAfter is a sink that errors on write n+1 and every write after,
// recording how many writes it ever saw.
type failAfter struct {
	n      int
	writes int
	err    error
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.n {
		return 0, f.err
	}
	return len(p), nil
}

// TestSinkErrorIsSticky pins the SetSink contract: the FIRST write error
// is retained, Append keeps buffering without failing, and — because the
// error is sticky — the broken sink is never written to again.
func TestSinkErrorIsSticky(t *testing.T) {
	l := New(8)
	sinkErr := errors.New("disk full")
	sink := &failAfter{n: 2, err: sinkErr}
	l.SetSink(sink)

	l.Append(Event{Round: 0, Kind: "round"})
	l.Append(Event{Round: 1, Kind: "round"})
	if l.SinkErr() != nil {
		t.Fatalf("premature sink error: %v", l.SinkErr())
	}
	l.Append(Event{Round: 2, Kind: "round"}) // sink write 3 fails
	if got := l.SinkErr(); got != sinkErr {
		t.Fatalf("SinkErr = %v, want the sink's error", got)
	}
	for i := 3; i < 6; i++ {
		l.Append(Event{Round: i, Kind: "round"})
	}
	// The failed write (3) was the last one attempted; appends 4-6 must
	// not touch the sink again.
	if sink.writes != 3 {
		t.Fatalf("sink saw %d writes after its error, want exactly 3", sink.writes)
	}
	// The ring itself is unaffected: all six events buffered, none lost.
	if l.Len() != 6 || l.Dropped() != 0 {
		t.Fatalf("ring damaged by sink error: Len %d Dropped %d", l.Len(), l.Dropped())
	}
	if got := l.SinkErr(); got != sinkErr {
		t.Fatalf("SinkErr not sticky: %v", got)
	}
}

// TestRingWraparoundAtExactCapacity pins the boundary the eviction logic
// turns on: exactly cap appends fill the ring with zero drops, and the
// very next append evicts exactly the oldest line.
func TestRingWraparoundAtExactCapacity(t *testing.T) {
	const capacity = 5
	l := New(capacity)
	for i := 0; i < capacity; i++ {
		l.Append(Event{Round: i, Kind: "round"})
	}
	if l.Len() != capacity || l.Dropped() != 0 {
		t.Fatalf("at exactly capacity: Len %d Dropped %d, want %d and 0",
			l.Len(), l.Dropped(), capacity)
	}
	rounds := func() []int {
		var out []int
		for _, line := range strings.Split(strings.TrimRight(l.String(), "\n"), "\n") {
			var e Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("corrupt line %q: %v", line, err)
			}
			out = append(out, e.Round)
		}
		return out
	}
	for i, r := range rounds() {
		if r != i {
			t.Fatalf("pre-wrap order wrong: %v", rounds())
		}
	}
	// Append number cap+1: the ring wraps, dropping only round 0.
	l.Append(Event{Round: capacity, Kind: "round"})
	if l.Len() != capacity || l.Dropped() != 1 {
		t.Fatalf("after wrap: Len %d Dropped %d, want %d and 1",
			l.Len(), l.Dropped(), capacity)
	}
	for i, r := range rounds() {
		if r != i+1 {
			t.Fatalf("post-wrap order wrong: %v", rounds())
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Round: i, Kind: "round", Site: w})
				_ = l.Len()
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", l.Len())
	}
	if l.Dropped() != 8*100-64 {
		t.Fatalf("Dropped = %d, want %d", l.Dropped(), 8*100-64)
	}
	for _, line := range strings.Split(strings.TrimRight(l.String(), "\n"), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
	}
}
