// Package trace is the round-trace event log of the ops surface: a
// bounded, concurrency-safe ring of structured JSONL events (fault
// injections, per-round stats, recall probes) emitted by the schedule
// runner's observer hooks. When a conformance law or soak gate fails, the
// buffered tail is dumped so the failure can be replayed AND read; the
// passd daemon additionally streams every line through a write-through
// sink file.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one trace line. Kind discriminates the payload:
//
//	"fault" — a schedule event was applied (Op, Site carry the verb);
//	"round" — end-of-round stats (Offered/Acked/Bytes/Live/Recall);
//	"probe" — a recall probe reading outside the normal round cadence;
//	"soak"  — soak-engine lifecycle (iteration start/end, gate verdicts).
//
// Recall is only meaningful on "round"/"probe" lines; Bytes/Msgs are
// cumulative network totals at the time of the line.
type Event struct {
	Round   int     `json:"round"`
	Kind    string  `json:"kind"`
	Model   string  `json:"model,omitempty"`
	Op      string  `json:"op,omitempty"`
	Site    int     `json:"site,omitempty"`
	Iter    int     `json:"iter,omitempty"`
	Offered int     `json:"offered,omitempty"`
	Acked   int     `json:"acked,omitempty"`
	Live    int     `json:"live,omitempty"`
	Bytes   int64   `json:"bytes,omitempty"`
	Msgs    int64   `json:"msgs,omitempty"`
	Recall  float64 `json:"recall"`
	Note    string  `json:"note,omitempty"`
}

// Log is a bounded ring buffer of encoded JSONL lines. Appends past the
// capacity drop the oldest line and count the drop; the log never blocks
// and never grows without bound. The zero value is not usable; use New.
type Log struct {
	mu      sync.Mutex
	cap     int
	lines   []string
	start   int
	n       int
	dropped int64
	sink    io.Writer
	sinkErr error
}

// DefaultCap is the line capacity used when New is given cap <= 0 —
// enough for several soak iterations of per-round lines.
const DefaultCap = 4096

// New returns a log retaining at most capacity lines (DefaultCap if <= 0).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Log{cap: capacity, lines: make([]string, capacity)}
}

// SetSink installs a write-through sink: every subsequent Append also
// writes the encoded line to w. Sink errors are sticky and retrievable
// via SinkErr; they never fail the Append.
func (l *Log) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
}

// SinkErr returns the first write-through error, if any.
func (l *Log) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// Append encodes e as one JSON line and appends it, dropping the oldest
// buffered line if the ring is full.
func (l *Log) Append(e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		// Event is a flat struct of encodable fields; Marshal cannot fail.
		// Keep the trace honest anyway.
		b = []byte(fmt.Sprintf(`{"kind":"encode-error","note":%q}`, err.Error()))
	}
	line := string(b)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == l.cap {
		l.start = (l.start + 1) % l.cap
		l.n--
		l.dropped++
	}
	l.lines[(l.start+l.n)%l.cap] = line
	l.n++
	if l.sink != nil && l.sinkErr == nil {
		if _, err := io.WriteString(l.sink, line+"\n"); err != nil {
			l.sinkErr = err
		}
	}
}

// Len returns the number of buffered lines.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped returns how many lines have been evicted by the ring bound.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// WriteTo writes the buffered lines, oldest first, one JSON object per
// line, and reports the bytes written.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	lines := make([]string, l.n)
	for i := 0; i < l.n; i++ {
		lines[i] = l.lines[(l.start+i)%l.cap]
	}
	l.mu.Unlock()
	var total int64
	for _, line := range lines {
		n, err := io.WriteString(w, line+"\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the buffered tail as JSONL, for failure dumps.
func (l *Log) String() string {
	var b strings.Builder
	_, _ = l.WriteTo(&b)
	return b.String()
}
