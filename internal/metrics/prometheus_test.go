package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLabeledRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("model", "dht"), L("site", "3"))
	// Same name + same label set in a different order must be the same series.
	b := r.Counter("hits", L("site", "3"), L("model", "dht"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	// Different label value is a different series; unlabeled is different again.
	if r.Counter("hits", L("model", "dht"), L("site", "4")) == a {
		t.Fatal("distinct label value collided")
	}
	if r.Counter("hits") == a {
		t.Fatal("unlabeled series collided with labeled")
	}
	a.Add(5)
	if got := b.Value(); got != 5 {
		t.Fatalf("shared series value = %d, want 5", got)
	}
	// CounterNames collapses label sets of the same name.
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "hits" {
		t.Fatalf("CounterNames = %v, want [hits]", names)
	}
}

func TestSamplesDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("model", "b")).Add(2)
	r.Counter("c", L("model", "a")).Add(1)
	r.Gauge("g").Set(7)
	r.FGauge("f", L("model", "a")).Set(0.25)
	r.Histogram("h", L("model", "a")).Observe(3)

	s1 := r.Samples()
	s2 := r.Samples()
	if len(s1) != 5 {
		t.Fatalf("got %d samples, want 5", len(s1))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || labelString(s1[i].Labels) != labelString(s2[i].Labels) ||
			s1[i].Value != s2[i].Value || s1[i].Kind != s2[i].Kind {
			t.Fatalf("snapshot not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// Sorted by name, then label set: c{model=a}, c{model=b}, f, g, h.
	if s1[0].Value != 1 || s1[1].Value != 2 {
		t.Fatalf("label-set ordering wrong: %+v", s1[:2])
	}
	if s1[2].Value != 0.25 || s1[3].Value != 7 {
		t.Fatalf("name ordering wrong: %+v", s1)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pass_net_bytes_total", L("model", `we"ird\name`)).Add(42)
	r.Gauge("pass_sites_up", L("model", "dht")).Set(16)
	r.FGauge("pass_recall", L("model", "dht")).Set(0.9375)
	h := r.Histogram("pass_round_ms", L("model", "dht"))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pass_net_bytes_total counter\n",
		`pass_net_bytes_total{model="we\"ird\\name"} 42` + "\n",
		"# TYPE pass_sites_up gauge\n",
		`pass_sites_up{model="dht"} 16` + "\n",
		`pass_recall{model="dht"} 0.9375` + "\n",
		"# TYPE pass_round_ms summary\n",
		`pass_round_ms{model="dht",quantile="0.5"} `,
		`pass_round_ms_sum{model="dht"} 5050` + "\n",
		`pass_round_ms_count{model="dht"} 100` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" with no raw
	// newline inside a label value (the escaping contract).
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestWritePrometheusConcurrentMutation scrapes the registry while other
// goroutines register new series and bump existing ones — the exact
// shape of a passd /metrics scrape racing the soak loop. Under -race
// this pins the Samples snapshot discipline; functionally it requires
// every scrape to stay a well-formed exposition.
func TestWritePrometheusConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	r.Counter("pass_base_total").Add(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Churn both dimensions: new label sets (registry map
				// growth) and hot writes to existing series.
				r.Counter("pass_churn_total", L("w", string(rune('a'+w))), L("i", string(rune('a'+i%13)))).Add(1)
				r.Gauge("pass_hot", L("w", string(rune('a'+w)))).Set(int64(i))
				r.Histogram("pass_lat", L("w", string(rune('a'+w)))).Observe(float64(i % 100))
			}
		}(w)
	}

	for scrape := 0; scrape < 50; scrape++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape %d: %v", scrape, err)
		}
		for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if strings.Count(line, " ") != 1 {
				t.Fatalf("scrape %d produced malformed line %q", scrape, line)
			}
		}
		if !strings.Contains(b.String(), "pass_base_total 1\n") {
			t.Fatalf("scrape %d lost the stable series", scrape)
		}
	}
	close(stop)
	wg.Wait()

	// A final quiet scrape must be deterministic again.
	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("quiescent scrapes differ")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0)
	b := NewHistogram(0)
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("merged min/max = %v/%v, want 1/100", a.Min(), a.Max())
	}
	if got := a.Sum(); got != 5050 {
		t.Fatalf("merged sum = %v, want 5050", got)
	}
	if p50 := a.Quantile(0.5); math.Abs(p50-50.5) > 1 {
		t.Fatalf("merged p50 = %v, want ~50.5", p50)
	}
	// Self-merge and empty-merge are no-ops.
	a.Merge(a)
	a.Merge(NewHistogram(0))
	a.Merge(nil)
	if a.Count() != 100 {
		t.Fatalf("self/empty merge changed count: %d", a.Count())
	}
}

func TestHistogramMergeBounded(t *testing.T) {
	a := NewHistogram(64)
	b := NewHistogram(64)
	for i := 0; i < 1000; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i + 1000))
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", a.Count())
	}
	a.mu.Lock()
	kept := len(a.samples)
	a.mu.Unlock()
	if kept > 64 {
		t.Fatalf("retained %d samples, cap is 64", kept)
	}
	// Percentiles should still span both halves roughly uniformly.
	if p50 := a.Quantile(0.5); p50 < 500 || p50 > 1500 {
		t.Fatalf("p50 = %v after downsample, want within [500,1500]", p50)
	}
}

// TestHistogramConcurrentMerge exercises merge + percentile estimation
// under concurrent writers; run under -race this pins the snapshot-copy
// locking discipline (no nested locks, no deadlock on cross-merges).
func TestHistogramConcurrentMerge(t *testing.T) {
	a := NewHistogram(256)
	b := NewHistogram(256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Observe(float64(w*500 + i))
				b.Observe(float64(w*500 + i))
				if i%100 == 0 {
					a.Merge(b)
					b.Merge(a)
				}
				_ = a.Quantile(0.99)
				_ = b.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if a.Count() == 0 || b.Count() == 0 {
		t.Fatal("lost all observations")
	}
	if q := a.Quantile(0.5); q < 0 || q > 2000 {
		t.Fatalf("p50 = %v out of plausible range", q)
	}
}

func TestCounterSetAndFGauge(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Set(3)
	if c.Value() != 3 {
		t.Fatalf("Set: got %d, want 3", c.Value())
	}
	var g FGauge
	if g.Value() != 0 {
		t.Fatalf("zero FGauge reads %v", g.Value())
	}
	g.Set(0.95)
	if g.Value() != 0.95 {
		t.Fatalf("FGauge = %v, want 0.95", g.Value())
	}
}
