// Package metrics provides the measurement primitives used throughout the
// PASS reproduction: counters, latency histograms with percentile
// estimation, simple rate meters, and a fixed-width table renderer used by
// the experiment harness to print paper-style result tables.
//
// All types are safe for concurrent use unless otherwise noted.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative n is ignored.
func (c *Counter) Add(n int64) {
	if n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current counter value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Set forces the counter to v. Monotonic sources should use Add/Inc; Set
// exists for samplers that mirror an upstream cumulative total (netsim
// shard stats, gossip meters) into the registry once per round.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FGauge is a settable instantaneous float64 value — recall probes,
// rates, fractions. The zero value is usable and reads 0.
type FGauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *FGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records observations and reports count, mean, min, max, and
// percentiles. Observations are kept exactly (sorted lazily) up to maxKeep
// samples, after which reservoir sampling keeps a uniform subset; exact
// count, sum, min, and max are always maintained.
type Histogram struct {
	mu       sync.Mutex
	samples  []float64
	count    int64
	sum      float64
	min      float64
	max      float64
	maxKeep  int
	rngState uint64
	sorted   bool
}

// reservoirSeed is the fixed xorshift seed every histogram starts from, so
// that same-seed runs make identical reservoir decisions. Reset restores it.
const reservoirSeed uint64 = 0x9e3779b97f4a7c15

// NewHistogram returns a histogram that retains at most maxKeep samples for
// percentile estimation. maxKeep <= 0 selects a default of 16384.
func NewHistogram(maxKeep int) *Histogram {
	if maxKeep <= 0 {
		maxKeep = 16384
	}
	return &Histogram{
		maxKeep:  maxKeep,
		min:      math.Inf(1),
		max:      math.Inf(-1),
		rngState: reservoirSeed,
	}
}

// nextRandLocked advances the xorshift state; callers hold h.mu.
func (h *Histogram) nextRandLocked() uint64 {
	h.rngState ^= h.rngState << 13
	h.rngState ^= h.rngState >> 7
	h.rngState ^= h.rngState << 17
	return h.rngState
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.sorted = false
	if len(h.samples) < h.maxKeep {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling: replace a random slot with probability keep/count.
	idx := h.nextRandLocked() % uint64(h.count)
	if idx < uint64(len(h.samples)) {
		h.samples[idx] = v
	}
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()) / 1e3)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) over retained samples using
// linear interpolation. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked computes the q-quantile; callers hold h.mu. Sorting is
// lazy and shared across consecutive quantile reads.
func (h *Histogram) quantileLocked(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count          int64
	Sum            float64
	Mean, Min, Max float64
	P50, P90, P99  float64
	P999           float64
}

// Snapshot returns a consistent summary: every field is read under one
// lock acquisition, so Mean is exactly Sum/Count and the quantiles come
// from the same sample pool even while other goroutines Observe.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, Sum: h.sum}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.Min = h.min
	s.Max = h.max
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	s.P999 = h.quantileLocked(0.999)
	return s
}

// Reset clears all recorded observations and re-seeds the reservoir RNG,
// so a reset histogram makes the same retention decisions as a fresh one
// (the suite's same-seed determinism convention).
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.sorted = false
	h.rngState = reservoirSeed
}

// Merge folds o's observations into h: exact count/sum/min/max combine,
// and o's retained samples join h's sample pool. When the union exceeds
// h's retention cap, each side's retention quota is proportional to its
// true observation count — not its pool size — so a 100-observation
// histogram merged into a 1M-observation one contributes ~0.01% of the
// merged pool instead of swamping the tail quantiles. o is read under its
// own lock and released before h locks, so concurrent a.Merge(b) /
// b.Merge(a) cannot deadlock. Merging a histogram into itself, or a
// nil/empty o, is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	o.mu.Lock()
	count, sum, min, max := o.count, o.sum, o.min, o.max
	samples := append([]float64(nil), o.samples...)
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	hCount := h.count
	h.count += count
	h.sum += sum
	if min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.sorted = false
	if len(h.samples)+len(samples) <= h.maxKeep {
		// Union fits: keep every sample. Each side's pool already carries
		// its own count-derived weight only when neither overflowed; for
		// small histograms this is the exact union.
		h.samples = append(h.samples, samples...)
		return
	}
	// Overflow: split the cap between the two pools in proportion to the
	// true observation counts, then uniformly subsample each side to its
	// quota. This preserves each side's weight in the merged quantiles.
	n := h.maxKeep
	kO := int(math.Round(float64(n) * float64(count) / float64(hCount+count)))
	if kO > len(samples) {
		kO = len(samples)
	}
	kH := n - kO
	if kH > len(h.samples) {
		kH = len(h.samples)
		if extra := n - kH; extra < len(samples) {
			kO = extra
		} else {
			kO = len(samples)
		}
	}
	h.samples = h.pickLocked(h.samples, kH)
	h.samples = append(h.samples, h.pickLocked(samples, kO)...)
}

// pickLocked uniformly selects k elements of pool without replacement via
// a partial Fisher–Yates shuffle, mutating pool in place and returning its
// first k elements. Callers hold h.mu (the selection consumes h's RNG).
func (h *Histogram) pickLocked(pool []float64, k int) []float64 {
	if k >= len(pool) {
		return pool
	}
	for i := 0; i < k; i++ {
		j := i + int(h.nextRandLocked()%uint64(len(pool)-i))
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k]
}

// Label is one dimension of a labeled metric, e.g. {model=passnet-eff} or
// {site=3}. A metric's identity in a Registry is its name plus the set of
// its labels; label order does not matter (the registry canonicalizes by
// sorting on key).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// canonLabels returns a sorted copy of labels (stable across call sites).
func canonLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// seriesKey renders name+labels canonically for map identity. The
// separators are control bytes no sane metric name or label contains.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0x00)
		b.WriteString(l.Key)
		b.WriteByte(0x01)
		b.WriteString(l.Value)
	}
	return b.String()
}

type counterEntry struct {
	name   string
	labels []Label
	c      *Counter
}

type gaugeEntry struct {
	name   string
	labels []Label
	g      *Gauge
}

type fgaugeEntry struct {
	name   string
	labels []Label
	g      *FGauge
}

type histEntry struct {
	name   string
	labels []Label
	h      *Histogram
}

// Registry is a named collection of counters, gauges, and histograms,
// optionally labeled (e.g. {model, site}). Metrics with the same name and
// the same canonical label set share one underlying instance. The zero
// value is not usable; use NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*counterEntry
	gauges     map[string]*gaugeEntry
	fgauges    map[string]*fgaugeEntry
	histograms map[string]*histEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*counterEntry),
		gauges:     make(map[string]*gaugeEntry),
		fgauges:    make(map[string]*fgaugeEntry),
		histograms: make(map[string]*histEntry),
	}
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[key]
	if !ok {
		e = &counterEntry{name: name, labels: ls, c: &Counter{}}
		r.counters[key] = e
	}
	return e.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.gauges[key]
	if !ok {
		e = &gaugeEntry{name: name, labels: ls, g: &Gauge{}}
		r.gauges[key] = e
	}
	return e.g
}

// FGauge returns the float gauge for name+labels, creating it on first use.
func (r *Registry) FGauge(name string, labels ...Label) *FGauge {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.fgauges[key]
	if !ok {
		e = &fgaugeEntry{name: name, labels: ls, g: &FGauge{}}
		r.fgauges[key] = e
	}
	return e.g
}

// Histogram returns the histogram for name+labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.histograms[key]
	if !ok {
		e = &histEntry{name: name, labels: ls, h: NewHistogram(0)}
		r.histograms[key] = e
	}
	return e.h
}

// CounterNames returns the sorted distinct names of all registered
// counters (label sets of the same name collapse to one entry).
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.counters))
	names := make([]string, 0, len(r.counters))
	for _, e := range r.counters {
		if !seen[e.name] {
			seen[e.name] = true
			names = append(names, e.name)
		}
	}
	sort.Strings(names)
	return names
}

// Reset clears every metric in the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.counters {
		e.c.Reset()
	}
	for _, e := range r.gauges {
		e.g.Set(0)
	}
	for _, e := range r.fgauges {
		e.g.Set(0)
	}
	for _, e := range r.histograms {
		e.h.Reset()
	}
}

// Table renders aligned fixed-width result tables, the output format of the
// experiment harness. It is not safe for concurrent use.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with a title line, a header row, and a separator.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// FormatBytes renders a byte count using binary units.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Timer measures elapsed wall time into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against h.
func StartTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time (in microseconds) and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	if t.h != nil {
		t.h.ObserveDuration(d)
	}
	return d
}
