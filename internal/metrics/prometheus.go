package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind discriminates the metric families a Registry snapshot can carry.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindFGauge
	KindHistogram
)

// String names the kind as it appears in Prometheus TYPE lines.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindFGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	default:
		return "untyped"
	}
}

// Sample is one series in a Registry snapshot: a metric name, its
// canonical (key-sorted) label set, and the value read at snapshot time.
// Histograms carry their full Snapshot instead of a scalar.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	Value  float64  // counters, gauges, fgauges
	Hist   Snapshot // histograms only
}

// Samples returns a deterministic point-in-time snapshot of every series
// in the registry, sorted by (name, label set, kind). Each call reads the
// live metrics; two calls with no writes in between return equal slices.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	type src struct {
		name   string
		labels []Label
		kind   Kind
		c      *Counter
		g      *Gauge
		f      *FGauge
		h      *Histogram
	}
	srcs := make([]src, 0, len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.histograms))
	for _, e := range r.counters {
		srcs = append(srcs, src{name: e.name, labels: e.labels, kind: KindCounter, c: e.c})
	}
	for _, e := range r.gauges {
		srcs = append(srcs, src{name: e.name, labels: e.labels, kind: KindGauge, g: e.g})
	}
	for _, e := range r.fgauges {
		srcs = append(srcs, src{name: e.name, labels: e.labels, kind: KindFGauge, f: e.g})
	}
	for _, e := range r.histograms {
		srcs = append(srcs, src{name: e.name, labels: e.labels, kind: KindHistogram, h: e.h})
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(srcs))
	for _, s := range srcs {
		sm := Sample{Name: s.name, Labels: s.labels, Kind: s.kind}
		switch s.kind {
		case KindCounter:
			sm.Value = float64(s.c.Value())
		case KindGauge:
			sm.Value = float64(s.g.Value())
		case KindFGauge:
			sm.Value = s.f.Value()
		case KindHistogram:
			sm.Hist = s.h.Snapshot()
		}
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		li, lj := labelString(out[i].Labels), labelString(out[j].Labels)
		if li != lj {
			return li < lj
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// labelString renders a canonical label set as {k="v",...} with Prometheus
// escaping, or "" when unlabeled.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote, and newline become \\, \",
// and \n respectively.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// withQuantile appends a quantile label to a rendered label set.
func withQuantile(labels []Label, q string) string {
	base := labelString(labels)
	if base == "" {
		return `{quantile="` + q + `"}`
	}
	return base[:len(base)-1] + `,quantile="` + q + `"}`
}

// fmtValue renders a sample value the way Prometheus expects: integral
// values without an exponent, everything else in shortest-round-trip form.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every series in the registry in the Prometheus
// text exposition format (version 0.0.4). Counters and gauges emit one
// line per label set under a shared TYPE header; histograms are exposed as
// summaries (quantile series plus _sum and _count). Output is
// deterministic: families sort by name, series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Samples()
	// Group into families: consecutive runs of the same (name, kind).
	lastFamily := ""
	for _, s := range samples {
		family := s.Name + "\x00" + s.Kind.String()
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = family
		}
		switch s.Kind {
		case KindCounter, KindGauge, KindFGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels), fmtValue(s.Value)); err != nil {
				return err
			}
		case KindHistogram:
			for _, q := range [...]struct {
				label string
				v     float64
			}{{"0.5", s.Hist.P50}, {"0.9", s.Hist.P90}, {"0.99", s.Hist.P99}, {"0.999", s.Hist.P999}} {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, withQuantile(s.Labels, q.label), fmtValue(q.v)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels), fmtValue(s.Hist.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
