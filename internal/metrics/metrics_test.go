package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramExactSmall(t *testing.T) {
	h := NewHistogram(100)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("empty snapshot count = %d", s.Count)
	}
}

func TestHistogramReservoirKeepsBounds(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("count = %d, want 10000", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("min = %v, want 0", got)
	}
	if got := h.Max(); got != 9999 {
		t.Fatalf("max = %v, want 9999", got)
	}
	// The p50 over a uniform 0..9999 stream should be loosely near 5000.
	p50 := h.Quantile(0.5)
	if p50 < 1000 || p50 > 9000 {
		t.Fatalf("reservoir p50 = %v, wildly off", p50)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	// Property: quantiles are monotone nondecreasing in q.
	f := func(vals []float64) bool {
		h := NewHistogram(1024)
		any := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
			any = true
		}
		if !any {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Observe(7)
	if got := h.Mean(); got != 7 {
		t.Fatalf("mean after reset+observe = %v, want 7", got)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("registry returned distinct counters for same name")
	}
	if r.Counter("b") == c1 {
		t.Fatal("distinct names share a counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("registry returned distinct histograms for same name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("registry returned distinct gauges for same name")
	}
}

func TestRegistryNamesAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(3)
	r.Counter("a").Add(1)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names = %v, want [a z]", names)
	}
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(1)
	r.Reset()
	if r.Counter("z").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("reset did not clear registry metrics")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E0: demo", "model", "latency", "bytes")
	tb.AddRow("central", 12.5, int64(1024))
	tb.AddRow("dht", 100.0, int64(2048))
	out := tb.String()
	if !strings.Contains(out, "E0: demo") {
		t.Fatalf("missing title in %q", out)
	}
	if !strings.Contains(out, "model") || !strings.Contains(out, "central") {
		t.Fatalf("missing cells in %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{1234, "1234"},
		{123.456, "123.5"},
		{12.345, "12.35"},
		{0.1234, "0.1234"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram(16)
	tm := StartTimer(h)
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("elapsed %v < 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	if h.Mean() <= 0 {
		t.Fatalf("mean %v, want > 0", h.Mean())
	}
}

func TestTimerNilHistogram(t *testing.T) {
	tm := StartTimer(nil)
	if d := tm.Stop(); d < 0 {
		t.Fatal("negative duration")
	}
}
