package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramExactSmall(t *testing.T) {
	h := NewHistogram(100)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("empty snapshot count = %d", s.Count)
	}
}

func TestHistogramReservoirKeepsBounds(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("count = %d, want 10000", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("min = %v, want 0", got)
	}
	if got := h.Max(); got != 9999 {
		t.Fatalf("max = %v, want 9999", got)
	}
	// The p50 over a uniform 0..9999 stream should be loosely near 5000.
	p50 := h.Quantile(0.5)
	if p50 < 1000 || p50 > 9000 {
		t.Fatalf("reservoir p50 = %v, wildly off", p50)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	// Property: quantiles are monotone nondecreasing in q.
	f := func(vals []float64) bool {
		h := NewHistogram(1024)
		any := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
			any = true
		}
		if !any {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// testRand is a minimal xorshift* generator for deterministic test draws.
type testRand struct{ s uint64 }

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

func (r *testRand) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// TestHistogramMergeWeightedRetention is the regression test for the merge
// downsample bias: a small histogram merged into a much larger one must
// keep pool shares proportional to true observation counts. Under the old
// uniform shuffle-truncate, the 200 foreign samples kept ~200/4296 of the
// merged pool (~4.6%, versus a true share of 0.1%), dragging the merged
// p99 into the foreign band; weighted retention keeps it in the dominant
// side's band.
func TestHistogramMergeWeightedRetention(t *testing.T) {
	dominant := NewHistogram(4096)
	for i := 0; i < 200000; i++ {
		dominant.Observe(10 + 10*float64(i%1000)/1000) // band [10, 20)
	}
	foreign := NewHistogram(4096)
	for i := 0; i < 200; i++ {
		foreign.Observe(1e6 + float64(i)) // band [1e6, 1e6+200)
	}
	dominant.Merge(foreign)
	if got := dominant.Count(); got != 200200 {
		t.Fatalf("merged count = %d, want 200200", got)
	}
	if got := dominant.Max(); got < 1e6 {
		t.Fatalf("merged max = %v, want >= 1e6 (exact max survives)", got)
	}
	// True foreign share is 200/200200 ≈ 0.1%, so the true p99 sits well
	// inside the dominant band.
	if p99 := dominant.Quantile(0.99); p99 < 10 || p99 >= 100 {
		t.Fatalf("merged p99 = %v, want in dominant band [10, 100)", p99)
	}
	// The foreign side must still be represented where it truly lives: at
	// the extreme tail. q=1 is the retained max-most sample.
	if q1 := dominant.Quantile(1); q1 < 20 {
		t.Fatalf("merged q1 = %v: foreign tail entirely lost", q1)
	}
}

// TestHistogramMergeSmallUnion pins the exact-union path: when both pools
// fit under the cap no sample is dropped.
func TestHistogramMergeSmallUnion(t *testing.T) {
	a := NewHistogram(100)
	b := NewHistogram(100)
	for _, v := range []float64{1, 2, 3} {
		a.Observe(v)
	}
	for _, v := range []float64{4, 5, 6} {
		b.Observe(v)
	}
	a.Merge(b)
	if got := a.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := a.Quantile(0.5); got != 3.5 {
		t.Fatalf("p50 = %v, want 3.5 (exact union)", got)
	}
}

// TestHistogramSnapshotAtomic pins the single-lock Snapshot: under
// concurrent Observe traffic every snapshot must be internally consistent
// (Mean is exactly Sum/Count, quantiles bracketed by Min/Max). Run under
// -race this also exercises the lock discipline.
func TestHistogramSnapshotAtomic(t *testing.T) {
	h := NewHistogram(1024)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := testRand{s: seed}
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(1 + 99*r.float64()) // values in [1, 100)
				}
			}
		}(uint64(w + 1))
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if want := s.Sum / float64(s.Count); s.Mean != want {
			t.Errorf("snapshot %d: Mean = %v, Sum/Count = %v (torn snapshot)", i, s.Mean, want)
			break
		}
		if s.Min > s.P50 || s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
			t.Errorf("snapshot %d: quantiles out of order: %+v", i, s)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramResetReseedsReservoir pins same-seed determinism across
// Reset: a reset-then-refilled histogram must make exactly the reservoir
// decisions of a fresh one. The old Reset left rngState mid-stream, so the
// second fill diverged.
func TestHistogramResetReseedsReservoir(t *testing.T) {
	feed := func(h *Histogram) {
		r := testRand{s: 7}
		for i := 0; i < 64*10; i++ {
			h.Observe(r.float64() * 1000)
		}
	}
	quantiles := func(h *Histogram) []float64 {
		out := make([]float64, 0, 11)
		for q := 0.0; q <= 1.0; q += 0.1 {
			out = append(out, h.Quantile(q))
		}
		return out
	}
	reused := NewHistogram(64)
	feed(reused)
	reused.Reset()
	feed(reused)
	fresh := NewHistogram(64)
	feed(fresh)
	got, want := quantiles(reused), quantiles(fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantile[%d] after reset+refill = %v, fresh = %v: reservoir not re-seeded", i, got[i], want[i])
		}
	}
}

// TestHistogramReservoirAccuracy feeds 10x the retention cap from known
// distributions and checks the estimated quantiles against the true ones.
func TestHistogramReservoirAccuracy(t *testing.T) {
	const keep = 1024
	const n = 10 * keep

	uniform := NewHistogram(keep)
	r := testRand{s: 42}
	for i := 0; i < n; i++ {
		uniform.Observe(r.float64() * 1000)
	}
	if p50 := uniform.Quantile(0.5); p50 < 420 || p50 > 580 {
		t.Fatalf("uniform p50 = %v, want near 500", p50)
	}
	if p99 := uniform.Quantile(0.99); p99 < 955 || p99 > 1000 {
		t.Fatalf("uniform p99 = %v, want near 990", p99)
	}

	// Pareto(alpha=1.5): x = (1/(1-u))^(1/1.5); median = 2^(2/3) ~ 1.587,
	// p99 = 100^(2/3) ~ 21.5.
	pareto := NewHistogram(keep)
	r = testRand{s: 99}
	for i := 0; i < n; i++ {
		u := r.float64()
		pareto.Observe(math.Pow(1/(1-u), 1/1.5))
	}
	if p50 := pareto.Quantile(0.5); p50 < 1.3 || p50 > 1.9 {
		t.Fatalf("pareto p50 = %v, want near 1.587", p50)
	}
	if p99 := pareto.Quantile(0.99); p99 < 14 || p99 > 32 {
		t.Fatalf("pareto p99 = %v, want near 21.5", p99)
	}
}

// TestHistogramObserveAtCapBoundary pins behavior at the exact moment the
// pool reaches maxKeep: the pool is still exact there, and the next
// observation switches to reservoir replacement without growing the pool.
func TestHistogramObserveAtCapBoundary(t *testing.T) {
	const keep = 256
	h := NewHistogram(keep)
	for i := 0; i < keep; i++ {
		h.Observe(float64(i))
	}
	// Exactly at the cap: all samples retained, quantiles exact.
	if got := h.Count(); got != keep {
		t.Fatalf("count = %d, want %d", got, keep)
	}
	if got := h.Quantile(0.5); got != 127.5 {
		t.Fatalf("p50 at cap = %v, want exact 127.5", got)
	}
	if got, want := h.Quantile(0), float64(0); got != want {
		t.Fatalf("q0 at cap = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1), float64(keep-1); got != want {
		t.Fatalf("q1 at cap = %v, want %v", got, want)
	}
	// One past the cap: exact stats keep counting, pool stays bounded and
	// quantiles stay within the observed range.
	h.Observe(float64(keep))
	if got := h.Count(); got != keep+1 {
		t.Fatalf("count past cap = %d, want %d", got, keep+1)
	}
	if got := h.Max(); got != float64(keep) {
		t.Fatalf("max past cap = %v, want %d", got, keep)
	}
	if q1 := h.Quantile(1); q1 < float64(keep-2) || q1 > float64(keep) {
		t.Fatalf("q1 past cap = %v, out of observed range", q1)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Observe(7)
	if got := h.Mean(); got != 7 {
		t.Fatalf("mean after reset+observe = %v, want 7", got)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("registry returned distinct counters for same name")
	}
	if r.Counter("b") == c1 {
		t.Fatal("distinct names share a counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("registry returned distinct histograms for same name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("registry returned distinct gauges for same name")
	}
}

func TestRegistryNamesAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(3)
	r.Counter("a").Add(1)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names = %v, want [a z]", names)
	}
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(1)
	r.Reset()
	if r.Counter("z").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("reset did not clear registry metrics")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E0: demo", "model", "latency", "bytes")
	tb.AddRow("central", 12.5, int64(1024))
	tb.AddRow("dht", 100.0, int64(2048))
	out := tb.String()
	if !strings.Contains(out, "E0: demo") {
		t.Fatalf("missing title in %q", out)
	}
	if !strings.Contains(out, "model") || !strings.Contains(out, "central") {
		t.Fatalf("missing cells in %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{1234, "1234"},
		{123.456, "123.5"},
		{12.345, "12.35"},
		{0.1234, "0.1234"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram(16)
	tm := StartTimer(h)
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("elapsed %v < 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	if h.Mean() <= 0 {
		t.Fatalf("mean %v, want > 0", h.Mean())
	}
}

func TestTimerNilHistogram(t *testing.T) {
	tm := StartTimer(nil)
	if d := tm.Stop(); d < 0 {
		t.Fatal("negative duration")
	}
}
