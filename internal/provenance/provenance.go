// Package provenance implements the paper's central abstraction: the
// provenance record, a structured collection of name-value pairs plus a
// derivation history that *is the name* of a sensor tuple set (Section
// II-A: "the provenance … is the single, unique identifier for that data
// set. In a very real sense, this makes the provenance the name of the
// data set. For this reason, provenance should be a first class property.
// Instead of encoding the name as a string, we represent it fully as a
// collection of name-value pairs.").
//
// A record's identity is the SHA-256 digest of its canonical binary
// encoding, which folds in the content digest of the data it names, its
// full attribute set, its parents, and the tool that produced it. This
// realizes PASS property P3 — "nonidentical data items do not have
// identical provenance" — by construction.
//
// Records come in three types mirroring the paper's usage:
//
//   - Raw: provenance of data collected directly from sensors.
//   - Derived: data produced by passing parents through a tool (Section
//     III-B: "the provenance of a derived data set is the provenance of
//     the original data plus the provenance of the tools used to do the
//     derivation").
//   - Annotation: a human or machine note attached to existing data
//     (Section I: "one might mark when individual sensors were replaced
//     with newer models").
package provenance

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"
)

// ID is the content-derived identity of a provenance record.
type ID [32]byte

// ZeroID is the invalid/absent ID.
var ZeroID ID

// String renders the ID as hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns the first 12 hex digits, for human-facing output.
func (id ID) Short() string { return hex.EncodeToString(id[:6]) }

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id == ZeroID }

// ParseID parses a 64-digit hex string.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("provenance: bad id %q: %w", s, err)
	}
	if len(b) != len(id) {
		return id, fmt.Errorf("provenance: bad id length %d, want %d", len(b), len(id))
	}
	copy(id[:], b)
	return id, nil
}

// Kind enumerates attribute value types.
type Kind uint8

// Attribute value kinds.
const (
	KindString Kind = iota + 1
	KindInt
	KindFloat
	KindTime
	KindBool
	KindBytes
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindTime:
		return "time"
	case KindBool:
		return "bool"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a typed attribute value. Exactly one field (selected by Kind)
// is meaningful.
type Value struct {
	Kind  Kind
	Str   string
	Int   int64 // also carries Time (unix nanoseconds) and Bool (0/1)
	Float float64
	Bytes []byte
}

// String, Int64, Float, TimeVal, Bool, and BytesVal construct Values.
func String(s string) Value     { return Value{Kind: KindString, Str: s} }
func Int64(v int64) Value       { return Value{Kind: KindInt, Int: v} }
func Float(v float64) Value     { return Value{Kind: KindFloat, Float: v} }
func TimeVal(t time.Time) Value { return Value{Kind: KindTime, Int: t.UnixNano()} }
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.Int = 1
	}
	return v
}
func BytesVal(b []byte) Value { return Value{Kind: KindBytes, Bytes: append([]byte(nil), b...)} }

// Time returns the value as a time.Time (meaningful for KindTime).
func (v Value) Time() time.Time { return time.Unix(0, v.Int) }

// Canonical returns the value's canonical binary encoding (kind tag plus
// payload). Two values are Equal exactly when their canonical encodings
// are byte-identical, so the encoding doubles as a map key.
func (v Value) Canonical() []byte { return v.appendCanonical(nil) }

// AsString renders any value for display and for conventional-filename
// encoding.
func (v Value) AsString() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindTime:
		return time.Unix(0, v.Int).UTC().Format(time.RFC3339Nano)
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindBytes:
		return hex.EncodeToString(v.Bytes)
	default:
		return ""
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindFloat:
		// Compare by bits so NaN == NaN for identity purposes.
		return math.Float64bits(v.Float) == math.Float64bits(o.Float)
	case KindBytes:
		return bytes.Equal(v.Bytes, o.Bytes)
	default:
		return v.Int == o.Int
	}
}

// appendCanonical appends the canonical encoding of the value.
func (v Value) appendCanonical(buf []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case KindString:
		n := binary.PutUvarint(tmp[:], uint64(len(v.Str)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, v.Str...)
	case KindInt, KindTime, KindBool:
		n := binary.PutVarint(tmp[:], v.Int)
		buf = append(buf, tmp[:n]...)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
	case KindBytes:
		n := binary.PutUvarint(tmp[:], uint64(len(v.Bytes)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, v.Bytes...)
	}
	return buf
}

func decodeValue(p []byte) (Value, []byte, error) {
	if len(p) == 0 {
		return Value{}, nil, errTruncated("value kind")
	}
	v := Value{Kind: Kind(p[0])}
	p = p[1:]
	switch v.Kind {
	case KindString:
		s, rest, err := decodeLenBytes(p, "string value")
		if err != nil {
			return Value{}, nil, err
		}
		v.Str = string(s)
		return v, rest, nil
	case KindInt, KindTime, KindBool:
		i, n := binary.Varint(p)
		if n <= 0 {
			return Value{}, nil, errTruncated("int value")
		}
		v.Int = i
		return v, p[n:], nil
	case KindFloat:
		if len(p) < 8 {
			return Value{}, nil, errTruncated("float value")
		}
		v.Float = math.Float64frombits(binary.LittleEndian.Uint64(p))
		return v, p[8:], nil
	case KindBytes:
		b, rest, err := decodeLenBytes(p, "bytes value")
		if err != nil {
			return Value{}, nil, err
		}
		v.Bytes = append([]byte(nil), b...)
		return v, rest, nil
	default:
		return Value{}, nil, fmt.Errorf("provenance: unknown value kind %d: %w", v.Kind, ErrCorrupt)
	}
}

// Attribute is one name-value pair of provenance metadata.
type Attribute struct {
	Key   string
	Value Value
}

// Attr constructs an attribute.
func Attr(key string, v Value) Attribute { return Attribute{Key: key, Value: v} }

// Well-known attribute keys. Domains are free to invent their own (Section
// II-A: "different communities will likely develop their own standards");
// these are the ones the built-in workloads and examples use.
const (
	KeyDomain      = "domain"       // e.g. "traffic", "medical", "volcano", "weather"
	KeySensorClass = "sensor-class" // e.g. "camera", "magnetometer", "ekg"
	KeyZone        = "zone"         // locality zone name, e.g. "boston"
	KeyRegion      = "region"       // finer placement within a zone
	KeyStart       = "t-start"      // window start, KindTime
	KeyEnd         = "t-end"        // window end, KindTime
	KeyOwner       = "owner"        // responsible party
	KeyPatient     = "patient"      // medical workload
	KeyEMT         = "emt"          // medical workload
	KeySensorID    = "sensor-id"    // may repeat (multi-valued)
	KeyNote        = "note"         // annotation text
	KeyUpgrade     = "upgrade"      // sensor model replacement marker
	KeyFormat      = "format"       // data encoding format
	KeySoftware    = "software"     // software version on the sensor devices
)

// Type distinguishes the three provenance record types.
type Type uint8

// Record types.
const (
	Raw Type = iota + 1
	Derived
	Annotation
)

func (t Type) String() string {
	switch t {
	case Raw:
		return "raw"
	case Derived:
		return "derived"
	case Annotation:
		return "annotation"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is a provenance record: the first-class, queryable name of one
// tuple set (or of an annotation on one).
type Record struct {
	// Type says how the named data came to be.
	Type Type
	// DataDigest is the content digest of the tuple set this record names
	// (zero for annotations, which name no data of their own).
	DataDigest [32]byte
	// DataSize is the encoded size in bytes of the named data; it rides
	// along so architecture models can charge realistic transfer costs
	// without holding the data.
	DataSize int64
	// Attributes is the name-value metadata. Multiple attributes may share
	// a key (a tuple set can have many sensor-id attributes).
	Attributes []Attribute
	// Parents are the IDs of the records this one descends from: the
	// derivation inputs for Derived, the annotated target(s) for
	// Annotation, empty for Raw.
	Parents []ID
	// Tool and ToolVersion identify the program that performed a
	// derivation, at the abstraction level the paper recommends (Section
	// V: report "gcc 3.3.3" rather than gcc's own full provenance).
	Tool        string
	ToolVersion string
	// Created is the record creation instant, unix nanoseconds. Part of
	// identity: the same content ingested at different instants is a
	// different historical event.
	Created int64
}

// Validation and decoding errors.
var (
	ErrCorrupt    = errors.New("provenance: corrupt record encoding")
	ErrInvalid    = errors.New("provenance: invalid record")
	ErrIDMismatch = errors.New("provenance: stored ID does not match content")
)

func errTruncated(what string) error {
	return fmt.Errorf("provenance: truncated %s: %w", what, ErrCorrupt)
}

// Validate checks structural invariants for the record type.
func (r *Record) Validate() error {
	switch r.Type {
	case Raw:
		if len(r.Parents) != 0 {
			return fmt.Errorf("%w: raw record has %d parents", ErrInvalid, len(r.Parents))
		}
	case Derived:
		if len(r.Parents) == 0 {
			return fmt.Errorf("%w: derived record has no parents", ErrInvalid)
		}
		if r.Tool == "" {
			return fmt.Errorf("%w: derived record has no tool", ErrInvalid)
		}
	case Annotation:
		if len(r.Parents) == 0 {
			return fmt.Errorf("%w: annotation has no target", ErrInvalid)
		}
	default:
		return fmt.Errorf("%w: unknown type %d", ErrInvalid, r.Type)
	}
	for _, a := range r.Attributes {
		if a.Key == "" {
			return fmt.Errorf("%w: empty attribute key", ErrInvalid)
		}
		if a.Value.Kind < KindString || a.Value.Kind > KindBytes {
			return fmt.Errorf("%w: attribute %q has invalid kind %d", ErrInvalid, a.Key, a.Value.Kind)
		}
	}
	seen := make(map[ID]struct{}, len(r.Parents))
	for _, p := range r.Parents {
		if p.IsZero() {
			return fmt.Errorf("%w: zero parent id", ErrInvalid)
		}
		if _, dup := seen[p]; dup {
			return fmt.Errorf("%w: duplicate parent %s", ErrInvalid, p.Short())
		}
		seen[p] = struct{}{}
	}
	return nil
}

// normalize sorts attributes into canonical order: by key, then by encoded
// value. Parent order is preserved — input order is meaningful for
// derivations (arg 1 vs arg 2).
func (r *Record) normalize() {
	sort.SliceStable(r.Attributes, func(i, j int) bool {
		if r.Attributes[i].Key != r.Attributes[j].Key {
			return r.Attributes[i].Key < r.Attributes[j].Key
		}
		vi := r.Attributes[i].Value.appendCanonical(nil)
		vj := r.Attributes[j].Value.appendCanonical(nil)
		return bytes.Compare(vi, vj) < 0
	})
}

const recordVersion = 1

// appendCanonical appends the canonical encoding (the hashed identity
// payload, also the storage format). The record must be normalized.
func (r *Record) appendCanonical(buf []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, recordVersion, byte(r.Type))
	buf = append(buf, r.DataDigest[:]...)
	n := binary.PutVarint(tmp[:], r.DataSize)
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(r.Attributes)))
	buf = append(buf, tmp[:n]...)
	for _, a := range r.Attributes {
		n = binary.PutUvarint(tmp[:], uint64(len(a.Key)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, a.Key...)
		buf = a.Value.appendCanonical(buf)
	}
	n = binary.PutUvarint(tmp[:], uint64(len(r.Parents)))
	buf = append(buf, tmp[:n]...)
	for _, p := range r.Parents {
		buf = append(buf, p[:]...)
	}
	n = binary.PutUvarint(tmp[:], uint64(len(r.Tool)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, r.Tool...)
	n = binary.PutUvarint(tmp[:], uint64(len(r.ToolVersion)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, r.ToolVersion...)
	n = binary.PutVarint(tmp[:], r.Created)
	buf = append(buf, tmp[:n]...)
	return buf
}

// Encode returns the canonical binary encoding. The record is normalized
// in place first.
func (r *Record) Encode() []byte {
	r.normalize()
	return r.appendCanonical(nil)
}

// ComputeID normalizes the record and returns its content-derived identity.
func (r *Record) ComputeID() ID {
	return sha256.Sum256(r.Encode())
}

func decodeLenBytes(p []byte, what string) ([]byte, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return nil, nil, errTruncated(what)
	}
	return p[n : n+int(l)], p[n+int(l):], nil
}

// Decode parses a canonical encoding produced by Encode.
func Decode(data []byte) (*Record, error) {
	if len(data) < 2+32 {
		return nil, errTruncated("header")
	}
	if data[0] != recordVersion {
		return nil, fmt.Errorf("provenance: unsupported version %d: %w", data[0], ErrCorrupt)
	}
	r := &Record{Type: Type(data[1])}
	p := data[2:]
	copy(r.DataDigest[:], p[:32])
	p = p[32:]
	size, n := binary.Varint(p)
	if n <= 0 {
		return nil, errTruncated("data size")
	}
	r.DataSize = size
	p = p[n:]

	nattrs, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errTruncated("attribute count")
	}
	p = p[n:]
	if nattrs > uint64(len(p)) { // each attribute needs >= 1 byte
		return nil, errTruncated("attributes")
	}
	if nattrs > 0 {
		r.Attributes = make([]Attribute, 0, nattrs)
	}
	for i := uint64(0); i < nattrs; i++ {
		k, rest, err := decodeLenBytes(p, "attribute key")
		if err != nil {
			return nil, err
		}
		p = rest
		v, rest, err := decodeValue(p)
		if err != nil {
			return nil, err
		}
		p = rest
		r.Attributes = append(r.Attributes, Attribute{Key: string(k), Value: v})
	}

	nparents, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errTruncated("parent count")
	}
	p = p[n:]
	if nparents*32 > uint64(len(p)) {
		return nil, errTruncated("parents")
	}
	if nparents > 0 {
		r.Parents = make([]ID, nparents)
		for i := range r.Parents {
			copy(r.Parents[i][:], p[:32])
			p = p[32:]
		}
	}

	tool, p, err := decodeLenBytes(p, "tool")
	if err != nil {
		return nil, err
	}
	r.Tool = string(tool)
	toolVer, p, err := decodeLenBytes(p, "tool version")
	if err != nil {
		return nil, err
	}
	r.ToolVersion = string(toolVer)
	created, n := binary.Varint(p)
	if n <= 0 {
		return nil, errTruncated("created")
	}
	r.Created = created
	p = p[n:]
	if len(p) != 0 {
		return nil, fmt.Errorf("provenance: %d trailing bytes: %w", len(p), ErrCorrupt)
	}
	return r, nil
}

// Get returns the first value for key.
func (r *Record) Get(key string) (Value, bool) {
	for _, a := range r.Attributes {
		if a.Key == key {
			return a.Value, true
		}
	}
	return Value{}, false
}

// GetAll returns every value recorded under key.
func (r *Record) GetAll(key string) []Value {
	var out []Value
	for _, a := range r.Attributes {
		if a.Key == key {
			out = append(out, a.Value)
		}
	}
	return out
}

// Has reports whether the record carries the exact attribute (key, value).
func (r *Record) Has(key string, v Value) bool {
	for _, a := range r.Attributes {
		if a.Key == key && a.Value.Equal(v) {
			return true
		}
	}
	return false
}

// TimeRange returns the (t-start, t-end) window attributes if both are
// present.
func (r *Record) TimeRange() (start, end int64, ok bool) {
	s, ok1 := r.Get(KeyStart)
	e, ok2 := r.Get(KeyEnd)
	if !ok1 || !ok2 || s.Kind != KindTime || e.Kind != KindTime {
		return 0, 0, false
	}
	return s.Int, e.Int, true
}

// Builder assembles records fluently. All constructors normalize and
// validate at Build time.
type Builder struct {
	r   Record
	err error
}

// NewRaw starts a raw-collection record for data with the given digest and
// size.
func NewRaw(digest [32]byte, size int64) *Builder {
	return &Builder{r: Record{Type: Raw, DataDigest: digest, DataSize: size}}
}

// NewDerived starts a derivation record: tool applied to parents produced
// data with the given digest.
func NewDerived(digest [32]byte, size int64, tool, toolVersion string, parents ...ID) *Builder {
	return &Builder{r: Record{
		Type:        Derived,
		DataDigest:  digest,
		DataSize:    size,
		Tool:        tool,
		ToolVersion: toolVersion,
		Parents:     append([]ID(nil), parents...),
	}}
}

// NewAnnotation starts an annotation record on the given targets.
func NewAnnotation(targets ...ID) *Builder {
	return &Builder{r: Record{Type: Annotation, Parents: append([]ID(nil), targets...)}}
}

// Attr adds one attribute.
func (b *Builder) Attr(key string, v Value) *Builder {
	b.r.Attributes = append(b.r.Attributes, Attribute{Key: key, Value: v})
	return b
}

// Attrs adds many attributes.
func (b *Builder) Attrs(attrs ...Attribute) *Builder {
	b.r.Attributes = append(b.r.Attributes, attrs...)
	return b
}

// CreatedAt sets the creation instant (unix nanoseconds).
func (b *Builder) CreatedAt(t int64) *Builder {
	b.r.Created = t
	return b
}

// Build validates, normalizes, and returns the record plus its ID.
func (b *Builder) Build() (*Record, ID, error) {
	if b.err != nil {
		return nil, ZeroID, b.err
	}
	r := b.r // copy
	r.Attributes = append([]Attribute(nil), b.r.Attributes...)
	r.Parents = append([]ID(nil), b.r.Parents...)
	if err := r.Validate(); err != nil {
		return nil, ZeroID, err
	}
	r.normalize()
	return &r, r.ComputeID(), nil
}
