package provenance

import (
	"testing"
	"testing/quick"
)

// Property: record identity is invariant under any permutation of the
// attribute list, and the canonical encoding round-trips for arbitrary
// attribute contents.
func TestIdentityPermutationInvariance(t *testing.T) {
	f := func(keys []string, vals []int64, rotate uint8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		attrs := make([]Attribute, 0, n)
		for i := 0; i < n; i++ {
			if keys[i] == "" {
				continue // empty keys are rejected by validation
			}
			attrs = append(attrs, Attr(keys[i], Int64(vals[i])))
		}
		if len(attrs) == 0 {
			return true
		}
		b1 := NewRaw(digestOf(1), 10).Attrs(attrs...).CreatedAt(5)
		_, id1, err := b1.Build()
		if err != nil {
			return false
		}
		// Rotate the attribute list: same multiset, different order.
		r := int(rotate) % len(attrs)
		rotated := append(append([]Attribute(nil), attrs[r:]...), attrs[:r]...)
		_, id2, err := NewRaw(digestOf(1), 10).Attrs(rotated...).CreatedAt(5).Build()
		if err != nil {
			return false
		}
		return id1 == id2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode/Decode round-trips for records with arbitrary
// attribute keys and string/bytes/int values, preserving identity.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(keys []string, svals []string, bvals [][]byte, created int64) bool {
		b := NewRaw(digestOf(7), 99).CreatedAt(created)
		for i, k := range keys {
			if k == "" {
				continue
			}
			switch i % 3 {
			case 0:
				if i < len(svals) {
					b = b.Attr(k, String(svals[i]))
				}
			case 1:
				if i < len(bvals) {
					b = b.Attr(k, BytesVal(bvals[i]))
				}
			default:
				b = b.Attr(k, Int64(int64(i)))
			}
		}
		rec, id, err := b.Build()
		if err != nil {
			return false
		}
		got, err := Decode(rec.Encode())
		if err != nil {
			return false
		}
		return got.ComputeID() == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: two records differing in exactly one attribute value never
// share an ID (the index/storage layers depend on this absolutely).
func TestSingleValuePerturbationProperty(t *testing.T) {
	f := func(key string, v1, v2 int64) bool {
		if key == "" {
			return true
		}
		_, id1, err := NewRaw(digestOf(3), 1).Attr(key, Int64(v1)).CreatedAt(9).Build()
		if err != nil {
			return false
		}
		_, id2, err := NewRaw(digestOf(3), 1).Attr(key, Int64(v2)).CreatedAt(9).Build()
		if err != nil {
			return false
		}
		if v1 == v2 {
			return id1 == id2
		}
		return id1 != id2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
