package provenance

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return d
}

func rawRecord(t *testing.T) (*Record, ID) {
	t.Helper()
	r, id, err := NewRaw(digestOf(1), 4096).
		Attr(KeyDomain, String("traffic")).
		Attr(KeyZone, String("london")).
		Attr(KeySensorID, String("cam-17")).
		Attr(KeySensorID, String("cam-18")).
		Attr(KeyStart, TimeVal(time.Unix(100, 0))).
		Attr(KeyEnd, TimeVal(time.Unix(160, 0))).
		CreatedAt(12345).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return r, id
}

func TestBuildRawRecord(t *testing.T) {
	r, id := rawRecord(t)
	if id.IsZero() {
		t.Fatal("built record has zero ID")
	}
	if r.Type != Raw {
		t.Fatalf("type = %v", r.Type)
	}
	if got := len(r.GetAll(KeySensorID)); got != 2 {
		t.Fatalf("sensor-id count = %d, want 2", got)
	}
	if v, ok := r.Get(KeyDomain); !ok || v.Str != "traffic" {
		t.Fatalf("domain = %+v, %v", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("found a missing key")
	}
}

func TestIDDeterministic(t *testing.T) {
	_, id1 := rawRecord(t)
	_, id2 := rawRecord(t)
	if id1 != id2 {
		t.Fatal("same logical record produced different IDs")
	}
}

func TestIDIgnoresAttributeOrder(t *testing.T) {
	r1, id1, err := NewRaw(digestOf(1), 10).
		Attr("a", String("1")).Attr("b", String("2")).CreatedAt(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, id2, err := NewRaw(digestOf(1), 10).
		Attr("b", String("2")).Attr("a", String("1")).CreatedAt(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("attribute order changed identity")
	}
	// Normalization must leave attributes sorted by key.
	if r1.Attributes[0].Key != "a" {
		t.Fatalf("attributes not normalized: %+v", r1.Attributes)
	}
}

func TestP3NonidenticalDataDistinctProvenance(t *testing.T) {
	// PASS property P3: records naming different data cannot collide, even
	// when every attribute matches.
	_, id1, err := NewRaw(digestOf(1), 10).Attr("k", String("v")).CreatedAt(7).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, id2, err := NewRaw(digestOf(2), 10).Attr("k", String("v")).CreatedAt(7).Build()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("different data digests share provenance ID")
	}
}

func TestIdentityPerturbationProperty(t *testing.T) {
	// Any single-field perturbation must change the ID.
	base := func() *Builder {
		return NewRaw(digestOf(3), 100).Attr("k", String("v")).CreatedAt(50)
	}
	_, id0, err := base().Build()
	if err != nil {
		t.Fatal(err)
	}
	perturbations := map[string]*Builder{
		"digest":   NewRaw(digestOf(4), 100).Attr("k", String("v")).CreatedAt(50),
		"size":     NewRaw(digestOf(3), 101).Attr("k", String("v")).CreatedAt(50),
		"attr-val": NewRaw(digestOf(3), 100).Attr("k", String("w")).CreatedAt(50),
		"attr-key": NewRaw(digestOf(3), 100).Attr("k2", String("v")).CreatedAt(50),
		"extra":    base().Attr("k2", String("x")),
		"created":  NewRaw(digestOf(3), 100).Attr("k", String("v")).CreatedAt(51),
		"kind":     NewRaw(digestOf(3), 100).Attr("k", BytesVal([]byte("v"))).CreatedAt(50),
	}
	for name, b := range perturbations {
		_, id, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if id == id0 {
			t.Errorf("perturbation %q did not change the ID", name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r, _ := rawRecord(t)
	enc := r.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	if got.ComputeID() != r.ComputeID() {
		t.Fatal("decoded record has different identity")
	}
}

func TestEncodeDecodeDerived(t *testing.T) {
	_, p1 := rawRecord(t)
	r, id, err := NewDerived(digestOf(9), 77, "sharpen", "2.1", p1).
		Attr(KeyDomain, String("traffic")).
		CreatedAt(999).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "sharpen" || got.ToolVersion != "2.1" {
		t.Fatalf("tool = %q %q", got.Tool, got.ToolVersion)
	}
	if len(got.Parents) != 1 || got.Parents[0] != p1 {
		t.Fatalf("parents = %v", got.Parents)
	}
	if got.ComputeID() != id {
		t.Fatal("identity not preserved")
	}
}

func TestParentOrderIsIdentity(t *testing.T) {
	_, pa, _ := NewRaw(digestOf(1), 1).CreatedAt(1).Build()
	_, pb, _ := NewRaw(digestOf(2), 1).CreatedAt(1).Build()
	_, id1, err := NewDerived(digestOf(3), 1, "join", "1", pa, pb).CreatedAt(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, id2, err := NewDerived(digestOf(3), 1, "join", "1", pb, pa).CreatedAt(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("parent order should be part of identity (join(a,b) != join(b,a))")
	}
}

func TestValidateRejections(t *testing.T) {
	_, parent, _ := NewRaw(digestOf(1), 1).CreatedAt(1).Build()
	cases := []struct {
		name string
		b    *Builder
	}{
		{"raw with parent", &Builder{r: Record{Type: Raw, Parents: []ID{parent}}}},
		{"derived no parents", NewDerived(digestOf(2), 1, "t", "1")},
		{"derived no tool", NewDerived(digestOf(2), 1, "", "1", parent)},
		{"annotation no target", NewAnnotation()},
		{"empty attr key", NewRaw(digestOf(1), 1).Attr("", String("x"))},
		{"zero parent", NewDerived(digestOf(2), 1, "t", "1", ZeroID)},
		{"dup parents", NewDerived(digestOf(2), 1, "t", "1", parent, parent)},
	}
	for _, c := range cases {
		if _, _, err := c.b.Build(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

func TestAnnotationRecord(t *testing.T) {
	_, target, _ := NewRaw(digestOf(1), 1).CreatedAt(1).Build()
	r, id, err := NewAnnotation(target).
		Attr(KeyNote, String("sensor 17 replaced with model B")).
		Attr(KeyUpgrade, Bool(true)).
		CreatedAt(5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if id.IsZero() || r.Type != Annotation {
		t.Fatalf("annotation = %+v", r)
	}
	if !r.Has(KeyUpgrade, Bool(true)) {
		t.Fatal("upgrade attribute missing")
	}
	got, err := Decode(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ComputeID() != id {
		t.Fatal("annotation identity not preserved")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r, _ := rawRecord(t)
	enc := r.Encode()
	for _, cut := range []int{0, 1, 5, 33, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte(nil), enc...), 0xAB)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Bad version.
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad version err = %v", err)
	}
	// Huge attribute count with no payload must not allocate or panic.
	hdr := append([]byte(nil), enc[:2+32]...)
	hdr = append(hdr, 0)                         // size
	hdr = append(hdr, 0xFF, 0xFF, 0xFF, 0xFF, 7) // absurd uvarint count
	if _, err := Decode(hdr); err == nil {
		t.Error("absurd attribute count accepted")
	}
}

func TestDecodeFuzzNoPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Must never panic; errors are fine.
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(s string, i int64, fl float64, bs []byte, b bool) bool {
		vals := []Value{String(s), Int64(i), Float(fl), BytesVal(bs), Bool(b), TimeVal(time.Unix(0, i))}
		for _, v := range vals {
			enc := v.appendCanonical(nil)
			got, rest, err := decodeValue(enc)
			if err != nil || len(rest) != 0 {
				return false
			}
			if !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValueAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("abc"), "abc"},
		{Int64(-7), "-7"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{BytesVal([]byte{0xde, 0xad}), "dead"},
		{TimeVal(time.Unix(0, 0)), "1970-01-01T00:00:00Z"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("AsString(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !String("x").Equal(String("x")) {
		t.Fatal("equal strings unequal")
	}
	if String("x").Equal(BytesVal([]byte("x"))) {
		t.Fatal("cross-kind values compared equal")
	}
	if !BytesVal([]byte{1, 2}).Equal(BytesVal([]byte{1, 2})) {
		t.Fatal("equal bytes unequal")
	}
	if Int64(1).Equal(Int64(2)) {
		t.Fatal("unequal ints equal")
	}
}

func TestParseID(t *testing.T) {
	_, id := rawRecord(t)
	parsed, err := ParseID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatal("ParseID(String) != identity")
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
	if len(id.Short()) != 12 {
		t.Fatalf("Short() length = %d", len(id.Short()))
	}
}

func TestTimeRangeAccessor(t *testing.T) {
	r, _ := rawRecord(t)
	s, e, ok := r.TimeRange()
	if !ok || s != time.Unix(100, 0).UnixNano() || e != time.Unix(160, 0).UnixNano() {
		t.Fatalf("TimeRange = %d, %d, %v", s, e, ok)
	}
	r2, _, _ := NewRaw(digestOf(1), 1).CreatedAt(1).Build()
	if _, _, ok := r2.TimeRange(); ok {
		t.Fatal("record without window reported a range")
	}
}

func TestBuilderDoesNotAliasInput(t *testing.T) {
	b := NewRaw(digestOf(1), 1).Attr("k", String("v")).CreatedAt(1)
	r1, id1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the builder after Build must not affect the built record.
	b.Attr("k2", String("v2"))
	if len(r1.Attributes) != 1 {
		t.Fatal("builder mutation leaked into built record")
	}
	_, id2, _ := b.Build()
	if id1 == id2 {
		t.Fatal("extended builder produced same ID")
	}
}

func TestTypeAndKindStrings(t *testing.T) {
	if Raw.String() != "raw" || Derived.String() != "derived" || Annotation.String() != "annotation" {
		t.Fatal("type strings wrong")
	}
	if KindString.String() != "string" || KindBytes.String() != "bytes" {
		t.Fatal("kind strings wrong")
	}
	if Type(99).String() == "" || Kind(99).String() == "" {
		t.Fatal("unknown enums should still render")
	}
}
