package workload

import "math"

// Shape selects the rate schedule of an open-loop generator: how the
// offered load varies round to round, independent of how fast the serving
// side drains it (that independence is what makes the load open-loop).
type Shape string

const (
	// ShapeFlat offers a constant rate.
	ShapeFlat Shape = "flat"
	// ShapeBursts alternates quiet rounds with BurstGain-times bursts.
	ShapeBursts Shape = "bursts"
	// ShapeDiurnal follows a sinusoidal day/night cycle of length Period.
	ShapeDiurnal Shape = "diurnal"
	// ShapeFlash is flat with one regional flash crowd: during the flash
	// window, FlashGain-times extra arrivals all hit FlashKey.
	ShapeFlash Shape = "flash"
)

// OpenLoopConfig parameterizes an open-loop arrival generator. The zero
// value is usable: withDefaults fills every field a caller leaves unset.
type OpenLoopConfig struct {
	Seed uint64
	// Clients is the producer population; arrivals draw their client
	// Zipf(ZipfS)-skewed, so client 0 is the hottest producer.
	Clients int
	// HotKeys is the key space arrivals and queries target, also
	// Zipf-skewed (key 0 hottest).
	HotKeys int
	// NominalPerRound is the baseline expected arrivals per round at
	// multiplier 1.
	NominalPerRound float64
	// Multiplier scales the whole schedule: E18 sweeps 1x/10x/100x.
	Multiplier float64
	Shape      Shape
	// Period spaces bursts (ShapeBursts) or sets the cycle length
	// (ShapeDiurnal).
	Period int
	// BurstLen rounds of each burst run at BurstGain times nominal.
	BurstLen  int
	BurstGain float64
	// Flash window [FlashStart, FlashStart+FlashLen): FlashGain times
	// nominal extra arrivals, all targeting FlashKey.
	FlashStart, FlashLen int
	FlashKey             int
	FlashGain            float64
	// ZipfS is the skew exponent for client and key draws; 0 disables
	// skew (uniform draws).
	ZipfS float64
	// QueriesPerRound is the expected closed-loop query intents per round;
	// queries target hot keys (and the flash key during a flash).
	QueriesPerRound float64
}

func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.HotKeys <= 0 {
		c.HotKeys = 16
	}
	if c.NominalPerRound <= 0 {
		c.NominalPerRound = 8
	}
	if c.Multiplier <= 0 {
		c.Multiplier = 1
	}
	if c.Shape == "" {
		c.Shape = ShapeFlat
	}
	if c.Period <= 0 {
		c.Period = 8
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 2
	}
	if c.BurstGain <= 0 {
		c.BurstGain = 4
	}
	if c.FlashLen <= 0 {
		c.FlashLen = 3
	}
	if c.FlashGain <= 0 {
		c.FlashGain = 8
	}
	if c.ZipfS < 0 {
		c.ZipfS = 0
	}
	return c
}

// Arrival is one open-loop publish arrival: which client produced it and
// which hot key (attribute bucket) it belongs to.
type Arrival struct {
	Client int
	Key    int
}

// QueryIntent is one closed-loop query a client wants answered: who asks
// and which hot key they ask about.
type QueryIntent struct {
	Client int
	Key    int
}

// OpenLoop generates per-round arrival and query-intent lists,
// deterministic given the config's seed. Rounds must be consumed in
// order (the generator advances one RNG stream); build one generator per
// experiment cell.
type OpenLoop struct {
	cfg       OpenLoopConfig
	rng       *Rand
	clientCDF []float64
	keyCDF    []float64
}

// NewOpenLoop builds a generator from cfg (defaults filled in).
func NewOpenLoop(cfg OpenLoopConfig) *OpenLoop {
	cfg = cfg.withDefaults()
	return &OpenLoop{
		cfg:       cfg,
		rng:       NewRand(cfg.Seed),
		clientCDF: zipfCDF(cfg.Clients, cfg.ZipfS),
		keyCDF:    zipfCDF(cfg.HotKeys, cfg.ZipfS),
	}
}

// zipfCDF precomputes the cumulative distribution of Zipf(s) over n items
// (s = 0 degenerates to uniform).
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// drawCDF inverts a CDF at a uniform draw via binary search.
func drawCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Rate returns the expected arrivals in the given round — the shape
// function times nominal times multiplier, before the flash-crowd extra.
func (g *OpenLoop) Rate(round int) float64 {
	base := g.cfg.NominalPerRound * g.cfg.Multiplier
	switch g.cfg.Shape {
	case ShapeBursts:
		if round%g.cfg.Period < g.cfg.BurstLen {
			return base * g.cfg.BurstGain
		}
		return base
	case ShapeDiurnal:
		// 1 +- 0.75 sinusoid: troughs at a quarter of nominal, peaks at
		// 1.75x, mean equal to nominal.
		return base * (1 + 0.75*math.Sin(2*math.Pi*float64(round)/float64(g.cfg.Period)))
	default:
		return base
	}
}

// inFlash reports whether round is inside the flash-crowd window.
func (g *OpenLoop) inFlash(round int) bool {
	return g.cfg.Shape == ShapeFlash &&
		round >= g.cfg.FlashStart && round < g.cfg.FlashStart+g.cfg.FlashLen
}

// count realizes an expected rate into a whole number of events: the
// integer part always happens, the fractional part with matching
// probability.
func (g *OpenLoop) count(rate float64) int {
	n := int(rate)
	if g.rng.Float64() < rate-float64(n) {
		n++
	}
	return n
}

// Arrivals returns the publish arrivals for one round, in arrival order.
func (g *OpenLoop) Arrivals(round int) []Arrival {
	n := g.count(g.Rate(round))
	var flash int
	if g.inFlash(round) {
		flash = g.count(g.cfg.NominalPerRound * g.cfg.Multiplier * g.cfg.FlashGain)
	}
	out := make([]Arrival, 0, n+flash)
	for i := 0; i < n; i++ {
		out = append(out, Arrival{
			Client: drawCDF(g.clientCDF, g.rng.Float64()),
			Key:    drawCDF(g.keyCDF, g.rng.Float64()),
		})
	}
	for i := 0; i < flash; i++ {
		out = append(out, Arrival{
			Client: drawCDF(g.clientCDF, g.rng.Float64()),
			Key:    g.cfg.FlashKey,
		})
	}
	return out
}

// Queries returns the closed-loop query intents for one round. During a
// flash crowd most queries chase the flash key (everyone asks about the
// event); otherwise they follow the hot-key skew.
func (g *OpenLoop) Queries(round int) []QueryIntent {
	n := g.count(g.cfg.QueriesPerRound)
	out := make([]QueryIntent, 0, n)
	for i := 0; i < n; i++ {
		q := QueryIntent{
			Client: drawCDF(g.clientCDF, g.rng.Float64()),
			Key:    drawCDF(g.keyCDF, g.rng.Float64()),
		}
		if g.inFlash(round) && g.rng.Float64() < 0.75 {
			q.Key = g.cfg.FlashKey
		}
		out = append(out, q)
	}
	return out
}
