package workload

import (
	"fmt"

	"pass/internal/core"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

// Lineage builders: construct derivation DAGs of controlled shape inside
// a core.Store, for the transitive-closure experiments (E4) and the
// distributed-closure experiments (E11). The paper's science examples
// (Section III-B) motivate both deep chains ("several steps involved with
// multiple intermediate data sets") and wide fan-ins (sky-survey style
// synthesis from many observatories).

// BuildChain ingests one raw set and derives depth-1 successive steps,
// returning all IDs root-first. Each step's tool is "step" with the level
// as its version.
func BuildChain(s *core.Store, depth int, seed uint64) ([]provenance.ID, error) {
	if depth < 1 {
		return nil, fmt.Errorf("workload: chain depth must be >= 1")
	}
	rng := NewRand(seed)
	root := &tuple.Set{}
	for i := 0; i < 8; i++ {
		root.Append(tuple.Reading{SensorID: "chain-root", Time: int64(i), Value: rng.Float64()})
	}
	rootID, err := s.IngestTupleSet(root,
		provenance.Attr(provenance.KeyDomain, provenance.String("synthetic")),
	)
	if err != nil {
		return nil, err
	}
	ids := []provenance.ID{rootID}
	cur := root
	for lvl := 1; lvl < depth; lvl++ {
		next := Filter(cur, 0) // identity-ish derivation with fresh digest
		next.Append(tuple.Reading{SensorID: "level", Time: int64(lvl), Value: float64(lvl)})
		id, err := s.Derive(ids[lvl-1:lvl], "step", fmt.Sprintf("%d", lvl), next)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		cur = next
	}
	return ids, nil
}

// BuildTree ingests fanout^depth leaf-ward derivations: level 0 is one
// raw root; each record at level l spawns fanout children at level l+1.
// Returns ids grouped by level. Total records = (fanout^(depth+1)-1)/(fanout-1).
func BuildTree(s *core.Store, depth, fanout int, seed uint64) ([][]provenance.ID, error) {
	if depth < 0 || fanout < 1 {
		return nil, fmt.Errorf("workload: bad tree shape depth=%d fanout=%d", depth, fanout)
	}
	rng := NewRand(seed)
	root := &tuple.Set{}
	root.Append(tuple.Reading{SensorID: "tree-root", Time: 0, Value: rng.Float64()})
	rootID, err := s.IngestTupleSet(root,
		provenance.Attr(provenance.KeyDomain, provenance.String("synthetic")))
	if err != nil {
		return nil, err
	}
	levels := [][]provenance.ID{{rootID}}
	serial := 0
	for lvl := 1; lvl <= depth; lvl++ {
		var level []provenance.ID
		for _, parent := range levels[lvl-1] {
			for c := 0; c < fanout; c++ {
				serial++
				out := &tuple.Set{}
				out.Append(tuple.Reading{SensorID: "tree", Time: int64(serial), Value: rng.Float64()})
				id, err := s.Derive([]provenance.ID{parent}, "expand", fmt.Sprintf("%d", lvl), out)
				if err != nil {
					return nil, err
				}
				level = append(level, id)
			}
		}
		levels = append(levels, level)
	}
	return levels, nil
}

// BuildFanIn builds width raw roots merged pairwise into a single final
// record: a synthesis DAG (sky-survey shape). Returns the roots and the
// final merged ID.
func BuildFanIn(s *core.Store, width int, seed uint64) (roots []provenance.ID, final provenance.ID, err error) {
	if width < 1 {
		return nil, provenance.ZeroID, fmt.Errorf("workload: fan-in width must be >= 1")
	}
	rng := NewRand(seed)
	layer := make([]provenance.ID, 0, width)
	for i := 0; i < width; i++ {
		ts := &tuple.Set{}
		ts.Append(tuple.Reading{SensorID: fmt.Sprintf("obs-%02d", i), Time: int64(i), Value: rng.Float64()})
		id, err := s.IngestTupleSet(ts,
			provenance.Attr(provenance.KeyDomain, provenance.String("synthetic")))
		if err != nil {
			return nil, provenance.ZeroID, err
		}
		layer = append(layer, id)
	}
	roots = append(roots, layer...)
	serial := 0
	for len(layer) > 1 {
		var next []provenance.ID
		for i := 0; i < len(layer); i += 2 {
			if i+1 == len(layer) {
				next = append(next, layer[i])
				continue
			}
			serial++
			out := &tuple.Set{}
			out.Append(tuple.Reading{SensorID: "merge", Time: int64(serial), Value: rng.Float64()})
			id, err := s.Derive([]provenance.ID{layer[i], layer[i+1]}, "merge", "1.0", out)
			if err != nil {
				return nil, provenance.ZeroID, err
			}
			next = append(next, id)
		}
		layer = next
	}
	return roots, layer[0], nil
}

// IngestAll ingests every generated set into the store and returns the
// record IDs in generation order.
func IngestAll(s *core.Store, sets []GenSet) ([]provenance.ID, error) {
	ids := make([]provenance.ID, 0, len(sets))
	for i, g := range sets {
		id, err := s.IngestTupleSet(g.Set, g.Attrs...)
		if err != nil {
			return nil, fmt.Errorf("workload: ingest set %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
