// Package workload generates the synthetic sensor workloads the
// experiments and examples run on, standing in for the deployments the
// paper motivates (Section I): London Congestion Zone traffic, the
// sensor-enabled ambulance team of Section III-C, volcano monitoring, and
// weather stations. Generators are fully deterministic given a seed, so
// every experiment is reproducible bit-for-bit.
//
// The generators produce three shapes of output:
//
//   - windowed tuple sets with realistic provenance attributes, ready for
//     core.Store ingestion or architecture-model publication;
//   - derivation pipelines that build multi-generation lineage DAGs
//     (plate extraction → hourly aggregation → cross-city merges);
//   - query workloads with exact ground truth, computed by flat-scanning
//     the generated records with query.Match, for precision/recall
//     scoring.
package workload

import (
	"fmt"
	"time"

	"pass/internal/provenance"
	"pass/internal/tuple"
)

// Rand is a deterministic xorshift* generator.
type Rand struct{ state uint64 }

// NewRand seeds a generator; seed 0 is remapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Next returns the next raw value.
func (r *Rand) Next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// Norm returns an approximately normal value (mean 0, stddev 1) via the
// sum of uniforms (Irwin–Hall with 12 terms).
func (r *Rand) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// GenSet is one generated tuple set plus the provenance attributes it
// should be ingested or published with.
type GenSet struct {
	Set   *tuple.Set
	Attrs []provenance.Attribute
	// Zone is the locality zone the set was produced in (also present in
	// Attrs); kept separate for site placement.
	Zone string
	// Window bounds, unix nanos.
	Start, End int64
}

// Domain identifies a generator family.
type Domain string

// Generator domains.
const (
	DomainTraffic Domain = "traffic"
	DomainMedical Domain = "medical"
	DomainVolcano Domain = "volcano"
	DomainWeather Domain = "weather"
)

// Config parameterizes windowed generation.
type Config struct {
	Domain Domain
	// Zones to generate for (e.g. city names). Required.
	Zones []string
	// SensorsPerZone is the number of distinct sensors per zone.
	SensorsPerZone int
	// Windows is the number of consecutive time windows.
	Windows int
	// WindowDur is each window's span.
	WindowDur time.Duration
	// ReadingsPerSensor per window.
	ReadingsPerSensor int
	// StartTime is the first window's start (unix nanos).
	StartTime int64
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Domain == "" {
		c.Domain = DomainTraffic
	}
	if len(c.Zones) == 0 {
		c.Zones = []string{"boston"}
	}
	if c.SensorsPerZone <= 0 {
		c.SensorsPerZone = 4
	}
	if c.Windows <= 0 {
		c.Windows = 4
	}
	if c.WindowDur <= 0 {
		c.WindowDur = time.Hour
	}
	if c.ReadingsPerSensor <= 0 {
		c.ReadingsPerSensor = 10
	}
	return c
}

// sensorClass returns the sensor class label for a domain.
func sensorClass(d Domain, sensorIdx int) string {
	switch d {
	case DomainTraffic:
		if sensorIdx%3 == 2 {
			return "magnetometer"
		}
		return "camera"
	case DomainMedical:
		if sensorIdx%2 == 0 {
			return "pulse-oximeter"
		}
		return "ekg"
	case DomainVolcano:
		return "seismometer"
	case DomainWeather:
		return "thermometer"
	default:
		return "generic"
	}
}

// value generates a domain-plausible reading value.
func value(d Domain, rng *Rand) float64 {
	switch d {
	case DomainTraffic:
		return 45 + 15*rng.Norm() // vehicle speed km/h
	case DomainMedical:
		return 75 + 12*rng.Norm() // heart rate bpm
	case DomainVolcano:
		return rng.Float64() * rng.Float64() * 10 // seismic amplitude, bursty
	case DomainWeather:
		return 15 + 10*rng.Norm() // temperature °C
	default:
		return rng.Norm()
	}
}

// label generates a domain-plausible categorical payload.
func label(d Domain, rng *Rand) string {
	switch d {
	case DomainTraffic:
		return fmt.Sprintf("plate:%06x", rng.Next()&0xFFFFFF)
	case DomainMedical:
		return fmt.Sprintf("patient:%02d", rng.Intn(20))
	default:
		return ""
	}
}

// Generate produces one tuple set per (zone, window): the Section II
// granularity ("all the readings of a particular type over the span of
// one hour"). Sets are ordered zone-major, window-minor.
func Generate(cfg Config) []GenSet {
	cfg = cfg.withDefaults()
	rng := NewRand(cfg.Seed)
	var out []GenSet
	for _, zone := range cfg.Zones {
		for w := 0; w < cfg.Windows; w++ {
			start := cfg.StartTime + int64(w)*cfg.WindowDur.Nanoseconds()
			end := start + cfg.WindowDur.Nanoseconds() - 1
			ts := &tuple.Set{}
			attrs := []provenance.Attribute{
				provenance.Attr(provenance.KeyDomain, provenance.String(string(cfg.Domain))),
				provenance.Attr(provenance.KeyZone, provenance.String(zone)),
				provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, start))),
				provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, end))),
			}
			classSeen := make(map[string]bool)
			for s := 0; s < cfg.SensorsPerZone; s++ {
				sensorID := fmt.Sprintf("%s-%s-%02d", zone, string(cfg.Domain)[:3], s)
				attrs = append(attrs, provenance.Attr(provenance.KeySensorID, provenance.String(sensorID)))
				class := sensorClass(cfg.Domain, s)
				if !classSeen[class] {
					classSeen[class] = true
					attrs = append(attrs, provenance.Attr(provenance.KeySensorClass, provenance.String(class)))
				}
				for i := 0; i < cfg.ReadingsPerSensor; i++ {
					span := end - start
					if span <= 0 {
						span = 1
					}
					ts.Append(tuple.Reading{
						SensorID: sensorID,
						Time:     start + int64(rng.Intn(int(span))),
						Value:    value(cfg.Domain, rng),
						Label:    label(cfg.Domain, rng),
					})
				}
			}
			out = append(out, GenSet{Set: ts, Attrs: attrs, Zone: zone, Start: start, End: end})
		}
	}
	return out
}

// Aggregate derives a summary tuple set from inputs (the aggregation step
// of the paper's traffic narrative). The result holds one reading per
// input: the input's mean value at the input's window start.
func Aggregate(inputs []*tuple.Set, sensorID string) *tuple.Set {
	out := &tuple.Set{}
	for _, in := range inputs {
		sum := in.Summarize()
		out.Append(tuple.Reading{
			SensorID: sensorID,
			Time:     sum.FirstTime,
			Value:    sum.Mean,
		})
	}
	return out
}

// Filter derives the subset of readings whose value is at least the
// threshold (speeders, arrhythmia spikes, eruption tremors).
func Filter(in *tuple.Set, threshold float64) *tuple.Set {
	out := &tuple.Set{}
	for _, r := range in.Readings {
		if r.Value >= threshold {
			out.Append(r)
		}
	}
	return out
}

// Merge concatenates readings from several sets (cross-zone merge).
func Merge(inputs []*tuple.Set) *tuple.Set {
	out := &tuple.Set{}
	for _, in := range inputs {
		out.Readings = append(out.Readings, in.Readings...)
	}
	return out
}
