package workload

import (
	"sync/atomic"
	"testing"
	"time"

	"pass/internal/core"
	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Domain: DomainTraffic, Zones: []string{"london", "boston"}, Windows: 3, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) || len(a) != 6 {
		t.Fatalf("lengths %d, %d; want 6", len(a), len(b))
	}
	for i := range a {
		if a[i].Set.Digest() != b[i].Set.Digest() {
			t.Fatalf("set %d differs across runs with same seed", i)
		}
	}
	c := Generate(Config{Domain: DomainTraffic, Zones: []string{"london", "boston"}, Windows: 3, Seed: 8})
	if a[0].Set.Digest() == c[0].Set.Digest() {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateAttributesComplete(t *testing.T) {
	sets := Generate(Config{Domain: DomainMedical, Zones: []string{"boston"}, Windows: 2, SensorsPerZone: 4, Seed: 1})
	for _, g := range sets {
		find := func(key string) bool {
			for _, a := range g.Attrs {
				if a.Key == key {
					return true
				}
			}
			return false
		}
		for _, key := range []string{provenance.KeyDomain, provenance.KeyZone, provenance.KeyStart, provenance.KeyEnd, provenance.KeySensorID, provenance.KeySensorClass} {
			if !find(key) {
				t.Fatalf("missing attribute %s", key)
			}
		}
		if g.Set.Len() != 4*10 {
			t.Fatalf("set has %d readings, want 40", g.Set.Len())
		}
		// Readings fall inside the declared window.
		min, max, _ := g.Set.TimeRange()
		if min < g.Start || max > g.End {
			t.Fatalf("readings [%d,%d] outside window [%d,%d]", min, max, g.Start, g.End)
		}
	}
}

func TestGenerateWindowsAreConsecutive(t *testing.T) {
	w := time.Minute
	sets := Generate(Config{Zones: []string{"z"}, Windows: 3, WindowDur: w, StartTime: 1000, Seed: 1})
	for i, g := range sets {
		wantStart := int64(1000) + int64(i)*w.Nanoseconds()
		if g.Start != wantStart {
			t.Fatalf("window %d starts at %d, want %d", i, g.Start, wantStart)
		}
	}
}

func TestDomainClassesAndLabels(t *testing.T) {
	traffic := Generate(Config{Domain: DomainTraffic, Zones: []string{"z"}, Windows: 1, SensorsPerZone: 3, Seed: 2})
	hasPlate := false
	for _, r := range traffic[0].Set.Readings {
		if len(r.Label) > 6 && r.Label[:6] == "plate:" {
			hasPlate = true
		}
	}
	if !hasPlate {
		t.Fatal("traffic readings carry no plate labels")
	}
	volcano := Generate(Config{Domain: DomainVolcano, Zones: []string{"z"}, Windows: 1, Seed: 2})
	for _, a := range volcano[0].Attrs {
		if a.Key == provenance.KeySensorClass && a.Value.Str != "seismometer" {
			t.Fatalf("volcano class = %q", a.Value.Str)
		}
	}
}

func TestAggregate(t *testing.T) {
	sets := Generate(Config{Zones: []string{"z"}, Windows: 3, Seed: 3})
	inputs := []*tuple.Set{sets[0].Set, sets[1].Set, sets[2].Set}
	agg := Aggregate(inputs, "agg-0")
	if agg.Len() != 3 {
		t.Fatalf("aggregate has %d readings, want 3 (one per input)", agg.Len())
	}
	for i, r := range agg.Readings {
		want := inputs[i].Summarize()
		if r.Value != want.Mean || r.Time != want.FirstTime {
			t.Fatalf("aggregate reading %d = %+v, want mean %v at %d", i, r, want.Mean, want.FirstTime)
		}
		if r.SensorID != "agg-0" {
			t.Fatalf("aggregate sensor = %q", r.SensorID)
		}
	}
	if got := Aggregate(nil, "x"); got.Len() != 0 {
		t.Fatal("empty aggregate nonempty")
	}
}

func TestFilter(t *testing.T) {
	in := &tuple.Set{Readings: []tuple.Reading{
		{SensorID: "s", Time: 1, Value: 10},
		{SensorID: "s", Time: 2, Value: 90},
		{SensorID: "s", Time: 3, Value: 50},
	}}
	out := Filter(in, 50)
	if out.Len() != 2 {
		t.Fatalf("filtered %d readings, want 2", out.Len())
	}
	for _, r := range out.Readings {
		if r.Value < 50 {
			t.Fatalf("filter kept %v", r.Value)
		}
	}
}

func TestMerge(t *testing.T) {
	a := &tuple.Set{Readings: []tuple.Reading{{SensorID: "a", Time: 1, Value: 1}}}
	b := &tuple.Set{Readings: []tuple.Reading{{SensorID: "b", Time: 2, Value: 2}}}
	m := Merge([]*tuple.Set{a, b})
	if m.Len() != 2 {
		t.Fatalf("merged %d readings", m.Len())
	}
}

func testClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }
}

func openStore(t *testing.T) *core.Store {
	t.Helper()
	s, err := core.Open(t.TempDir(), core.Options{Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestBuildChain(t *testing.T) {
	s := openStore(t)
	ids, err := BuildChain(s, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("chain length %d", len(ids))
	}
	anc, err := s.Ancestors(ids[9], index.NoLimit)
	if err != nil || len(anc) != 9 {
		t.Fatalf("ancestors = %d, %v", len(anc), err)
	}
	if _, err := BuildChain(s, 0, 1); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestBuildTree(t *testing.T) {
	s := openStore(t)
	levels, err := BuildTree(s, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("levels = %d", len(levels))
	}
	// Level sizes: 1, 2, 4, 8.
	for i, want := range []int{1, 2, 4, 8} {
		if len(levels[i]) != want {
			t.Fatalf("level %d size %d, want %d", i, len(levels[i]), want)
		}
	}
	// Root's descendants = 14.
	desc, err := s.Descendants(levels[0][0], index.NoLimit)
	if err != nil || len(desc) != 14 {
		t.Fatalf("descendants = %d, %v", len(desc), err)
	}
	if _, err := BuildTree(s, -1, 2, 1); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestBuildFanIn(t *testing.T) {
	s := openStore(t)
	roots, final, err := BuildFanIn(s, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 8 {
		t.Fatalf("roots = %d", len(roots))
	}
	got, err := s.Roots(final)
	if err != nil || len(got) != 8 {
		t.Fatalf("Roots(final) = %d, %v", len(got), err)
	}
	// Odd width works too (one carries over).
	s2 := openStore(t)
	_, final2, err := BuildFanIn(s2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := s2.Roots(final2)
	if len(got2) != 5 {
		t.Fatalf("odd-width roots = %d", len(got2))
	}
}

func TestIngestAllAndGroundTruth(t *testing.T) {
	s := openStore(t)
	sets := Generate(Config{
		Domain:  DomainTraffic,
		Zones:   []string{"boston", "london"},
		Windows: 3, Seed: 9,
	})
	ids, err := IngestAll(s, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("ingested %d", len(ids))
	}
	// Indexed query must agree with flat-scan ground truth.
	pred := query.AttrEq{Key: provenance.KeyZone, Value: provenance.String("boston")}
	got, err := s.Query(pred)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0
	s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
		if m, _ := query.Match(rec, pred); m {
			truth++
		}
		return true
	})
	q := query.Score(got, got[:0:0])
	_ = q
	if len(got) != truth || truth != 3 {
		t.Fatalf("query %d vs truth %d (want 3)", len(got), truth)
	}
}

func TestRandHelpers(t *testing.T) {
	r := NewRand(0)
	if r.Intn(0) != 0 {
		t.Fatal("Intn(0) != 0")
	}
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	// Norm should be roughly centered.
	sum := 0.0
	for i := 0; i < 5000; i++ {
		sum += r.Norm()
	}
	mean := sum / 5000
	if mean > 0.2 || mean < -0.2 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
}
