package workload

import (
	"math"
	"testing"
)

func TestOpenLoopDeterminism(t *testing.T) {
	cfg := OpenLoopConfig{
		Seed: 42, Clients: 32, HotKeys: 8, NominalPerRound: 5.5,
		Multiplier: 3, Shape: ShapeBursts, ZipfS: 1.1, QueriesPerRound: 2.5,
	}
	a, b := NewOpenLoop(cfg), NewOpenLoop(cfg)
	for r := 0; r < 50; r++ {
		aa, ba := a.Arrivals(r), b.Arrivals(r)
		if len(aa) != len(ba) {
			t.Fatalf("round %d: %d vs %d arrivals", r, len(aa), len(ba))
		}
		for i := range aa {
			if aa[i] != ba[i] {
				t.Fatalf("round %d arrival %d: %+v vs %+v", r, i, aa[i], ba[i])
			}
		}
		aq, bq := a.Queries(r), b.Queries(r)
		if len(aq) != len(bq) {
			t.Fatalf("round %d: %d vs %d queries", r, len(aq), len(bq))
		}
		for i := range aq {
			if aq[i] != bq[i] {
				t.Fatalf("round %d query %d: %+v vs %+v", r, i, aq[i], bq[i])
			}
		}
	}
	// A different seed produces a different stream.
	c := NewOpenLoop(OpenLoopConfig{
		Seed: 43, Clients: 32, HotKeys: 8, NominalPerRound: 5.5,
		Multiplier: 3, Shape: ShapeBursts, ZipfS: 1.1, QueriesPerRound: 2.5,
	})
	diff := false
	a2 := NewOpenLoop(cfg)
	for r := 0; r < 20 && !diff; r++ {
		x, y := a2.Arrivals(r), c.Arrivals(r)
		if len(x) != len(y) {
			diff = true
			break
		}
		for i := range x {
			if x[i] != y[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestOpenLoopShapes(t *testing.T) {
	total := func(cfg OpenLoopConfig, rounds int) int {
		g := NewOpenLoop(cfg)
		n := 0
		for r := 0; r < rounds; r++ {
			n += len(g.Arrivals(r))
		}
		return n
	}
	flat := OpenLoopConfig{Seed: 1, NominalPerRound: 10, Shape: ShapeFlat}
	if got := total(flat, 100); got < 900 || got > 1100 {
		t.Fatalf("flat total = %d, want ~1000", got)
	}
	// Multiplier scales the whole schedule.
	x10 := flat
	x10.Multiplier = 10
	if got := total(x10, 100); got < 9000 || got > 11000 {
		t.Fatalf("10x total = %d, want ~10000", got)
	}
	// Bursts: burst rounds run at BurstGain times the quiet rounds.
	burst := OpenLoopConfig{
		Seed: 2, NominalPerRound: 10, Shape: ShapeBursts,
		Period: 10, BurstLen: 2, BurstGain: 5,
	}
	g := NewOpenLoop(burst)
	if got, want := g.Rate(0), 50.0; got != want {
		t.Fatalf("burst-round rate = %v, want %v", got, want)
	}
	if got, want := g.Rate(5), 10.0; got != want {
		t.Fatalf("quiet-round rate = %v, want %v", got, want)
	}
	// Diurnal: rate oscillates around nominal with mean ~nominal.
	diurnal := OpenLoopConfig{Seed: 3, NominalPerRound: 10, Shape: ShapeDiurnal, Period: 16}
	g = NewOpenLoop(diurnal)
	lo, hi, mean := math.Inf(1), math.Inf(-1), 0.0
	for r := 0; r < 16; r++ {
		v := g.Rate(r)
		lo, hi, mean = math.Min(lo, v), math.Max(hi, v), mean+v/16
	}
	if lo >= 10 || hi <= 10 || math.Abs(mean-10) > 0.5 {
		t.Fatalf("diurnal lo/hi/mean = %v/%v/%v, want oscillation around 10", lo, hi, mean)
	}
}

func TestOpenLoopZipfSkew(t *testing.T) {
	g := NewOpenLoop(OpenLoopConfig{
		Seed: 11, Clients: 64, HotKeys: 64, NominalPerRound: 100, ZipfS: 1.2,
	})
	clientHits := make(map[int]int)
	keyHits := make(map[int]int)
	n := 0
	for r := 0; r < 50; r++ {
		for _, a := range g.Arrivals(r) {
			clientHits[a.Client]++
			keyHits[a.Key]++
			n++
		}
	}
	// Under Zipf(1.2) over 64 items the top item draws ~21% of traffic;
	// uniform would give ~1.6%. Assert strong concentration.
	if frac := float64(clientHits[0]) / float64(n); frac < 0.10 {
		t.Fatalf("hottest client drew %.1f%%, want >= 10%% under skew", 100*frac)
	}
	if frac := float64(keyHits[0]) / float64(n); frac < 0.10 {
		t.Fatalf("hottest key drew %.1f%%, want >= 10%% under skew", 100*frac)
	}
	if clientHits[0] <= clientHits[63] {
		t.Fatal("skew inverted: coldest client outdrew hottest")
	}

	// ZipfS = 0 degenerates to uniform: the head item stays near 1/64.
	u := NewOpenLoop(OpenLoopConfig{Seed: 11, Clients: 64, HotKeys: 64, NominalPerRound: 100})
	uHits, uN := 0, 0
	for r := 0; r < 50; r++ {
		for _, a := range u.Arrivals(r) {
			if a.Client == 0 {
				uHits++
			}
			uN++
		}
	}
	if frac := float64(uHits) / float64(uN); frac > 0.05 {
		t.Fatalf("uniform head client drew %.1f%%, want ~1.6%%", 100*frac)
	}
}

func TestOpenLoopFlashCrowd(t *testing.T) {
	g := NewOpenLoop(OpenLoopConfig{
		Seed: 5, Clients: 16, HotKeys: 16, NominalPerRound: 10,
		Shape: ShapeFlash, FlashStart: 10, FlashLen: 3, FlashKey: 9, FlashGain: 8,
		QueriesPerRound: 10, ZipfS: 1.0,
	})
	for r := 0; r < 20; r++ {
		arrivals := g.Arrivals(r)
		queries := g.Queries(r)
		flashArr, flashQ := 0, 0
		for _, a := range arrivals {
			if a.Key == 9 {
				flashArr++
			}
		}
		for _, q := range queries {
			if q.Key == 9 {
				flashQ++
			}
		}
		in := r >= 10 && r < 13
		if in {
			if len(arrivals) < 50 {
				t.Fatalf("round %d in flash: %d arrivals, want the 8x surge", r, len(arrivals))
			}
			if flashArr < len(arrivals)/2 {
				t.Fatalf("round %d in flash: only %d/%d arrivals hit the flash key", r, flashArr, len(arrivals))
			}
			if flashQ < len(queries)/2 {
				t.Fatalf("round %d in flash: only %d/%d queries chase the flash key", r, flashQ, len(queries))
			}
		} else if len(arrivals) > 25 {
			t.Fatalf("round %d outside flash: %d arrivals, want ~10", r, len(arrivals))
		}
	}
}

func BenchmarkOpenLoopGen(b *testing.B) {
	g := NewOpenLoop(OpenLoopConfig{
		Seed: 1, Clients: 1024, HotKeys: 64, NominalPerRound: 100,
		Multiplier: 10, Shape: ShapeBursts, ZipfS: 1.1, QueriesPerRound: 10,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Arrivals(i)
		_ = g.Queries(i)
	}
}
