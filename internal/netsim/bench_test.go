package netsim

import (
	"errors"
	"testing"
	"unsafe"
)

// TestStatShardPadding pins the false-sharing defence: adjacent shards
// must not share a cache line, so the struct size must be a 64-byte
// multiple.
func TestStatShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(statShard{}); s%64 != 0 {
		t.Fatalf("statShard is %d bytes, want a multiple of the 64-byte cache line", s)
	}
}

// The Send hot path is the floor under every experiment's runtime: the
// E14/E16/E17 sweeps push millions of messages, so Send must not allocate
// and must not recompute geography per message. The allocation tests pin
// the contract exactly (0 heap allocations on the zero-fault path AND on
// every injected-fault path); the benchmarks feed `make bench-quick`.

func benchNet(nSites int, cfg Config) (*Network, []SiteID) {
	net, sites := RandomTopology(cfg, nSites/4, 4, 77)
	return net, sites
}

func TestSendZeroAllocs(t *testing.T) {
	net, sites := benchNet(64, Config{})
	a, b := sites[0], sites[len(sites)-1]
	if _, err := net.Send(a, b, 128); err != nil { // build the latency cache
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		to := sites[(i+1)%len(sites)]
		i++
		if to == a {
			to = b
		}
		if _, err := net.Send(a, to, 128); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("zero-fault Send allocates %v times per call, want 0", allocs)
	}
}

func TestFaultPathsZeroAllocs(t *testing.T) {
	// Each injected-fault return must be a pre-built sentinel: the churn
	// and membership sweeps hit these millions of times.
	t.Run("site-down", func(t *testing.T) {
		net, sites := benchNet(16, Config{})
		net.Fail(sites[1])
		if allocs := testing.AllocsPerRun(1000, func() {
			if _, err := net.Send(sites[0], sites[1], 64); !errors.Is(err, ErrSiteDown) {
				t.Fatalf("err = %v", err)
			}
		}); allocs != 0 {
			t.Fatalf("ErrSiteDown path allocates %v times per call, want 0", allocs)
		}
	})
	t.Run("partitioned", func(t *testing.T) {
		net, sites := benchNet(16, Config{})
		net.Partition(sites[:8], sites[8:])
		if allocs := testing.AllocsPerRun(1000, func() {
			if _, err := net.Send(sites[0], sites[15], 64); !errors.Is(err, ErrPartitioned) {
				t.Fatalf("err = %v", err)
			}
		}); allocs != 0 {
			t.Fatalf("ErrPartitioned path allocates %v times per call, want 0", allocs)
		}
	})
	t.Run("msg-lost", func(t *testing.T) {
		net, sites := benchNet(16, Config{LossRate: 1, Seed: 3})
		if _, err := net.Send(sites[0], sites[1], 64); !errors.Is(err, ErrMsgLost) {
			t.Fatal("expected full loss")
		}
		if allocs := testing.AllocsPerRun(1000, func() {
			if _, err := net.Send(sites[0], sites[1], 64); !errors.Is(err, ErrMsgLost) {
				t.Fatalf("err = %v", err)
			}
		}); allocs != 0 {
			t.Fatalf("ErrMsgLost path allocates %v times per call, want 0", allocs)
		}
	})
}

// BenchmarkSend measures the zero-fault hot path over a 64-site random
// topology with the latency cache warm — the steady state of every sweep.
func BenchmarkSend(b *testing.B) {
	net, sites := benchNet(64, Config{})
	if _, err := net.Send(sites[0], sites[1], 128); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Send(sites[i%len(sites)], sites[(i+7)%len(sites)], 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendUncached exercises the direct-computation fallback used by
// topologies too large for the pair table (the 10k-site sweeps).
func BenchmarkSendUncached(b *testing.B) {
	net, sites := RandomTopology(Config{}, (maxCachedSites+4)/4+1, 4, 77)
	if len(sites) <= maxCachedSites {
		b.Fatalf("topology of %d sites unexpectedly cacheable", len(sites))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Send(sites[i%len(sites)], sites[(i+7)%len(sites)], 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendLossy includes the RNG draw and the drop accounting.
func BenchmarkSendLossy(b *testing.B) {
	net, sites := benchNet(64, Config{LossRate: 0.2, Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := net.Send(sites[i%len(sites)], sites[(i+7)%len(sites)], 128)
		if err != nil && !errors.Is(err, ErrMsgLost) {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendDown measures the fault fast path: the destination is
// failed, so the send must bail with the pre-built sentinel.
func BenchmarkSendDown(b *testing.B) {
	net, sites := benchNet(64, Config{})
	net.Fail(sites[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Send(sites[0], sites[1], 128); !errors.Is(err, ErrSiteDown) {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcast covers the dense-ID fan-out (no per-call site-table
// copy).
func BenchmarkBroadcast(b *testing.B) {
	net, sites := benchNet(256, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Broadcast(sites[i%len(sites)], 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStats pins the aggregation cost: O(shards), independent of the
// site count (it is called between phases of every sweep cell).
func BenchmarkStats(b *testing.B) {
	net, sites := benchNet(256, Config{})
	for i := 0; i < 4096; i++ {
		if _, err := net.Send(sites[i%len(sites)], sites[(i+3)%len(sites)], 64); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.Stats()
		if st.Messages == 0 {
			b.Fatal("no traffic accounted")
		}
	}
}
