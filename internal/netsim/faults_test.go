package netsim

import (
	"errors"
	"testing"

	"pass/internal/geo"
)

func TestLossDeterministicUnderSeed(t *testing.T) {
	run := func() (lost int, st Stats) {
		n := New(Config{LossRate: 0.3, Seed: 42})
		a := n.AddSite("a", geo.Point{}, "east")
		b := n.AddSite("b", geo.Point{X: 100}, "west")
		for i := 0; i < 1000; i++ {
			if _, err := n.Send(a, b, 100); errors.Is(err, ErrMsgLost) {
				lost++
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return lost, n.Stats()
	}
	lost1, st1 := run()
	lost2, st2 := run()
	if lost1 != lost2 || st1 != st2 {
		t.Fatalf("same seed diverged: %d/%+v vs %d/%+v", lost1, st1, lost2, st2)
	}
	if lost1 < 200 || lost1 > 400 {
		t.Fatalf("loss rate 0.3 dropped %d/1000 messages", lost1)
	}
	if st1.DroppedMsgs != int64(lost1) || st1.DroppedBytes != int64(lost1)*100 {
		t.Fatalf("drop accounting: %+v, want %d drops", st1, lost1)
	}
	// Lost messages still consumed bandwidth.
	if st1.Messages != 1000 || st1.Bytes != 100000 {
		t.Fatalf("offered-traffic accounting: %+v", st1)
	}
}

func TestLossSeedsDiffer(t *testing.T) {
	lossesFor := func(seed uint64) []bool {
		n := New(Config{LossRate: 0.5, Seed: seed})
		a := n.AddSite("a", geo.Point{}, "east")
		b := n.AddSite("b", geo.Point{X: 100}, "west")
		out := make([]bool, 200)
		for i := range out {
			_, err := n.Send(a, b, 10)
			out[i] = errors.Is(err, ErrMsgLost)
		}
		return out
	}
	p1, p2 := lossesFor(1), lossesFor(2)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestLoopbackNeverDrops(t *testing.T) {
	n := New(Config{LossRate: 1.0})
	a := n.AddSite("a", geo.Point{}, "z")
	for i := 0; i < 50; i++ {
		if _, err := n.Send(a, a, 100); err != nil {
			t.Fatalf("loopback dropped: %v", err)
		}
	}
}

func TestPristineConfigUnchangedByRNG(t *testing.T) {
	// With LossRate 0 the fault machinery must be inert: no drops ever.
	n := New(Config{})
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	for i := 0; i < 1000; i++ {
		if _, err := n.Send(a, b, 10); err != nil {
			t.Fatal(err)
		}
	}
	if st := n.Stats(); st.DroppedMsgs != 0 {
		t.Fatalf("pristine network dropped messages: %+v", st)
	}
}

func TestSetLinkLossOverride(t *testing.T) {
	n := New(Config{Seed: 7}) // global rate 0
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	n.SetLinkLoss(a, b, 1.0) // a->b always drops; b->a pristine
	if _, err := n.Send(a, b, 10); !errors.Is(err, ErrMsgLost) {
		t.Fatalf("err = %v, want ErrMsgLost", err)
	}
	if _, err := n.Send(b, a, 10); err != nil {
		t.Fatalf("reverse link dropped: %v", err)
	}
	n.SetLinkLoss(a, b, -1) // clear override
	if _, err := n.Send(a, b, 10); err != nil {
		t.Fatalf("cleared override still drops: %v", err)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := New(Config{})
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	c := n.AddSite("c", geo.Point{X: 200}, "west")
	n.Partition([]SiteID{a}, []SiteID{b, c})
	if _, err := n.Send(a, b, 10); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-cell send: %v, want ErrPartitioned", err)
	}
	if !n.Partitioned(a, b) || n.Partitioned(b, c) {
		t.Fatal("Partitioned() disagrees with cells")
	}
	// Same-cell traffic flows.
	if _, err := n.Send(b, c, 10); err != nil {
		t.Fatal(err)
	}
	// Loopback inside a cell flows.
	if _, err := n.Send(a, a, 10); err != nil {
		t.Fatal(err)
	}
	// Partitioned sends are not accounted.
	if st := n.Stats(); st.Messages != 2 {
		t.Fatalf("messages = %d, want 2", st.Messages)
	}
	n.HealPartition()
	if _, err := n.Send(a, b, 10); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestPartitionSingleCellCutsMinorityOff(t *testing.T) {
	n := New(Config{})
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	c := n.AddSite("c", geo.Point{X: 200}, "west")
	n.Partition([]SiteID{a}) // minority of one vs everyone unlisted
	if _, err := n.Send(a, b, 10); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("minority reached the rest: %v", err)
	}
	if _, err := n.Send(b, c, 10); err != nil {
		t.Fatalf("unlisted sites should stay connected: %v", err)
	}
}

func TestCallPreservesLostLegLatency(t *testing.T) {
	n := New(Config{Seed: 5})
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	n.SetLinkLoss(a, b, 1.0) // request leg always drops
	d, err := n.Call(a, b, 100, 100)
	if !errors.Is(err, ErrMsgLost) {
		t.Fatalf("err = %v, want ErrMsgLost", err)
	}
	if d <= 0 {
		t.Fatalf("lost request leg returned latency %v; wasted time must be accounted", d)
	}
	n.SetLinkLoss(a, b, -1)
	n.SetLinkLoss(b, a, 1.0) // response leg always drops
	oneWay, _ := n.Latency(a, b, 100)
	d, err = n.Call(a, b, 100, 100)
	if !errors.Is(err, ErrMsgLost) {
		t.Fatalf("err = %v, want ErrMsgLost", err)
	}
	if d < 2*oneWay {
		t.Fatalf("lost response leg returned %v, want at least the full round trip %v", d, 2*oneWay)
	}
}

func TestPartitionUnlistedSitesJoinCellZero(t *testing.T) {
	n := New(Config{})
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	c := n.AddSite("c", geo.Point{X: 200}, "west")
	n.Partition(nil, []SiteID{c}) // a and b unlisted -> cell 0, c isolated
	if _, err := n.Send(a, b, 10); err != nil {
		t.Fatalf("unlisted sites should share cell 0: %v", err)
	}
	if _, err := n.Send(a, c, 10); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("isolated site reachable: %v", err)
	}
}

func TestUnavailableClassification(t *testing.T) {
	n := New(Config{LossRate: 1.0, Seed: 1})
	a := n.AddSite("a", geo.Point{}, "east")
	b := n.AddSite("b", geo.Point{X: 100}, "west")
	_, lossErr := n.Send(a, b, 10)
	if !Unavailable(lossErr) {
		t.Fatalf("loss not Unavailable: %v", lossErr)
	}
	n.Fail(b)
	_, downErr := n.Send(a, b, 10)
	if !Unavailable(downErr) {
		t.Fatalf("down not Unavailable: %v", downErr)
	}
	n.Heal(b)
	n.Partition([]SiteID{a}, []SiteID{b})
	_, partErr := n.Send(a, b, 10)
	if !Unavailable(partErr) {
		t.Fatalf("partition not Unavailable: %v", partErr)
	}
	_, badErr := n.Send(a, SiteID(99), 10)
	if Unavailable(badErr) {
		t.Fatalf("ErrNoSuchSite misclassified as Unavailable: %v", badErr)
	}
}

func TestFromMapTopology(t *testing.T) {
	m := geo.RandomLayout(10, 5000, 50, 3)
	net, sites := FromMap(Config{}, m, 4)
	if len(sites) != 40 || net.NumSites() != 40 {
		t.Fatalf("site count = %d, want 40", len(sites))
	}
	// Zone-major order: sites[z*4 : z*4+4] share zone z.
	for z := 0; z < 10; z++ {
		for i := 0; i < 4; i++ {
			s, err := net.Site(sites[z*4+i])
			if err != nil {
				t.Fatal(err)
			}
			if want := m.Zones()[z].Name; s.Zone != want {
				t.Fatalf("site %s zone = %s, want %s", s.Name, s.Zone, want)
			}
		}
	}
	// Intra-zone distances are much smaller than the plane.
	a, _ := net.Site(sites[0])
	b, _ := net.Site(sites[1])
	if d := a.Loc.Distance(b.Loc); d > 100 {
		t.Fatalf("intra-zone distance %v too large", d)
	}
	// Determinism: identical inputs give identical topology.
	_, sites2 := FromMap(Config{}, geo.RandomLayout(10, 5000, 50, 3), 4)
	if len(sites2) != len(sites) {
		t.Fatal("topology not deterministic")
	}
}
