// Package netsim is a deterministic wide-area network simulator. Every
// distributed architecture model in this reproduction (central warehouse,
// distributed/federated databases, soft-state services, hierarchical
// namespaces, DHTs, and distributed PASS) exchanges messages through a
// Network, which charges simulated latency for propagation, per-message
// overhead, and transmission time, and accounts every byte that crosses a
// link. The paper's "Resource Consumption" criterion (Section IV) is
// measured directly from these accounts.
//
// The simulator is intentionally synchronous and deterministic: a Send
// returns the latency the message would have experienced rather than
// sleeping, so experiments are exactly reproducible and fast. Latency is
// additive along multi-hop paths, matching how the architecture models
// compose calls.
//
// # Fault injection
//
// The network can inject three failure classes, all deterministic under
// Config.Seed:
//
//   - Packet loss: Config.LossRate (or a per-link override via
//     SetLinkLoss) drops each inter-site message with the given
//     probability. A lost message still consumed link bandwidth, so its
//     bytes ARE accounted (plus the Dropped counters); the caller gets
//     ErrMsgLost with the latency it wasted finding out. Loopback
//     messages never drop.
//   - Site crashes: Fail marks a site down; sends to or from it return
//     ErrSiteDown (unaccounted — nothing was transmitted). Heal recovers.
//   - Partitions: Partition splits sites into cells; messages across a
//     cell boundary return ErrPartitioned (unaccounted). HealPartition
//     reconnects everyone.
//
// Unavailable distinguishes these injected faults from programming errors
// (ErrNoSuchSite), so models can retry or degrade on the former and fail
// fast on the latter.
//
// # Performance model
//
// Send is the hottest function in the repository: the E14/E16/E17 sweeps
// push millions of messages through it, and the archtest conformance
// suite runs 1,000- and 10,000-site topologies over it. The hot path is
// therefore allocation-free and read-mostly:
//
//   - Topology and fault state (sites, down/cell slices, loss
//     configuration, the latency table) live in one immutable snapshot
//     behind an atomic pointer. Send pays a single pointer load — no
//     lock — to see a consistent topology; mutators (AddSite, Fail,
//     Partition, SetLinkLoss, ...) copy-on-write a new snapshot under
//     the writer mutex. Mutations happen between experiment phases, not
//     per message, so the copies are off the hot path by construction.
//   - Per-pair base latency (per-message overhead + geographic
//     propagation) is cached in a flat n×n table inside the snapshot,
//     built lazily on first use for networks up to maxCachedSites sites,
//     so Send stops recomputing geo distance per message. Larger
//     networks (the 10k-site sweeps) fall back to direct computation.
//   - down and cell are dense slices indexed by SiteID; the linkLoss
//     overrides hide behind a hasLinkLoss flag and a packed uint64 key,
//     so the zero-override case pays one branch, no map hash.
//   - Fault returns are the pre-built exported sentinels — no fmt.Errorf
//     per fault. errors.Is matches exactly as before; the caller already
//     knows from/to if it wants to annotate.
//   - Accounting is sharded: global Stats is an aggregation over a fixed
//     set of padded shards picked by sender ID, each guarding its plain
//     counters with its own narrow mutex, so concurrent senders do not
//     contend on one stats lock and Stats() stays O(shards), not
//     O(sites). A site's per-site counters are guarded by that site's
//     shard (sender counters under shard(from), receiver counters under
//     shard(to)), so they stay plain fields too.
//   - The loss RNG has its own mutex and is only touched when an
//     effective loss rate is positive, so pristine-network sends consume
//     no randomness and take no extra lock.
//
// One deliberate non-guarantee: registering sites (AddSite) concurrently
// with in-flight traffic is not supported — build the topology, then run
// load. Fault injection (Fail/Heal/Partition/SetLinkLoss) is always safe
// concurrently with traffic.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pass/internal/geo"
	"pass/internal/xrand"
)

// SiteID identifies a site (host) in the simulated network.
type SiteID int

// InvalidSite is returned by lookups that fail.
const InvalidSite SiteID = -1

// Site is a participating host: a storage node, a warehouse, a sensor
// gateway, or a consumer's query terminal.
type Site struct {
	ID   SiteID
	Name string
	Loc  geo.Point
	Zone string // name of the locality zone the site belongs to
}

// Config sets the latency and bandwidth model.
type Config struct {
	// PropagationPerKm is the one-way propagation delay per kilometre.
	// Default: 5µs/km (speed of light in fibre ≈ 200,000 km/s).
	PropagationPerKm time.Duration
	// PerMessage is fixed per-message processing/queueing overhead.
	// Default: 200µs.
	PerMessage time.Duration
	// BytesPerSecond is link bandwidth. Default: 100 MB/s.
	BytesPerSecond int64
	// LocalDelay is the latency of a message a site sends to itself
	// (loopback / same rack). Default: 20µs.
	LocalDelay time.Duration
	// LossRate is the probability in [0, 1) that an inter-site message
	// is dropped in transit. Default: 0 (pristine network). Loopback
	// messages never drop.
	LossRate float64
	// Seed seeds the deterministic loss generator; 0 selects a fixed
	// default, so the zero Config remains fully reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.PropagationPerKm <= 0 {
		c.PropagationPerKm = 5 * time.Microsecond
	}
	if c.PerMessage <= 0 {
		c.PerMessage = 200 * time.Microsecond
	}
	if c.BytesPerSecond <= 0 {
		c.BytesPerSecond = 100 << 20
	}
	if c.LocalDelay <= 0 {
		c.LocalDelay = 20 * time.Microsecond
	}
	return c
}

// Stats is a snapshot of traffic accounting.
type Stats struct {
	Messages   int64 // total messages transmitted (delivered + dropped)
	Bytes      int64 // total bytes transmitted
	WANBytes   int64 // bytes crossing zone boundaries
	WANMsgs    int64 // messages crossing zone boundaries
	LocalMsgs  int64 // messages within one zone (incl. loopback)
	TotalDelay time.Duration
	// DroppedMsgs / DroppedBytes count messages lost in transit: their
	// bandwidth was spent (included in the totals above) but they never
	// arrived.
	DroppedMsgs  int64
	DroppedBytes int64
}

// ErrSiteDown is returned when a message targets a failed site.
var ErrSiteDown = errors.New("netsim: site is down")

// ErrMsgLost is returned when a message is dropped in transit by the
// configured packet-loss rate.
var ErrMsgLost = errors.New("netsim: message lost in transit")

// ErrPartitioned is returned when sender and receiver sit in different
// partition cells.
var ErrPartitioned = errors.New("netsim: sites are partitioned")

// ErrNoSuchSite is returned for unknown site IDs.
var ErrNoSuchSite = errors.New("netsim: no such site")

// Unavailable reports whether err is an injected fault — a down site, a
// lost message, or a partition — as opposed to a programming error such
// as an unknown site. Models retry or degrade on unavailable errors and
// fail fast on everything else.
func Unavailable(err error) bool {
	return errors.Is(err, ErrSiteDown) || errors.Is(err, ErrMsgLost) || errors.Is(err, ErrPartitioned)
}

// maxCachedSites bounds the per-pair latency table: n sites cost n²×8
// bytes (1,024 sites → 8 MiB). The 1,000-site conformance sweeps fit;
// the 10,000-site sweeps fall back to computing propagation per send.
const maxCachedSites = 1024

// Stats sharding: counters are spread over a fixed power-of-two number
// of padded shards picked by site ID, so concurrent senders touch
// different locks and Stats() aggregates O(shards) values regardless of
// topology size.
const (
	numStatShards = 32
	statShardMask = numStatShards - 1
)

// statShard is one shard of the global accounting: a narrow mutex over
// plain counters (one uncontended lock round trip beats a volley of
// atomic adds on the hot path). The pad keeps neighbouring shards from
// false-sharing.
type statShard struct {
	mu                                        sync.Mutex
	msgs, bytes, wanBytes, wanMsgs            int64
	localMsgs, delayNs, dropped, droppedBytes int64
	_                                         [56]byte // 8B mutex + 64B counters + 56B = 128, two full lines
}

// siteCounters is one site's traffic accounting. The sender-side fields
// are guarded by shard(site) when the site transmits; the receiver-side
// fields by shard(site) when it receives — always the same shard, so all
// four stay plain fields.
type siteCounters struct {
	msgsIn, msgsOut   int64
	bytesIn, bytesOut int64
	_                 [32]byte
}

// topo is the immutable topology snapshot Send reads with one atomic
// pointer load. Mutators build a new topo (sharing what they did not
// change) and swap the pointer under Network.writeMu.
type topo struct {
	sites []Site
	down  []bool // dense, indexed by SiteID
	// cell maps each site to its partition cell (dense); nil means no
	// partition. Sites beyond its length read as cell 0.
	cell     []int32
	lossRate float64
	// linkLoss holds per-directed-link loss overrides under a packed
	// from<<32|to key; hasLinkLoss spares the zero-override hot path the
	// map probe entirely.
	linkLoss    map[uint64]float64
	hasLinkLoss bool
	// latBase caches PerMessage+propagation per (from,to) pair; nil
	// until built. tooBig permanently disables the cache for this
	// topology size.
	latBase []time.Duration
	tooBig  bool
	// counters holds the per-site accounting (mutable elements in an
	// immutable header; see siteCounters for the locking discipline).
	counters []siteCounters
}

func (t *topo) cellOf(id SiteID) int32 {
	if int(id) < len(t.cell) {
		return t.cell[id]
	}
	return 0
}

// Network is the simulated network. Safe for concurrent use (except
// AddSite concurrent with traffic; see the package comment).
type Network struct {
	cfg  Config
	topo atomic.Pointer[topo]

	// writeMu serializes all topology mutation and owns byName (name
	// lookup is not a hot path).
	writeMu sync.Mutex
	byName  map[string]SiteID

	// rng drives packet loss; its own narrow lock keeps the pristine
	// path lock-free and the draw order deterministic per caller.
	rngMu sync.Mutex
	rng   *xrand.Rand

	shards [numStatShards]statShard
}

// SiteStats accounts per-site traffic.
type SiteStats struct {
	MsgsIn, MsgsOut   int64
	BytesIn, BytesOut int64
}

// New returns a network with the given configuration (zero value = defaults).
func New(cfg Config) *Network {
	n := &Network{
		cfg:    cfg.withDefaults(),
		byName: make(map[string]SiteID),
		rng:    xrand.New(cfg.Seed),
	}
	n.topo.Store(&topo{lossRate: cfg.LossRate})
	return n
}

// mutate runs f over a shallow copy of the current snapshot under the
// writer lock and publishes the result. f must replace (never write
// through) any slice or map it changes.
func (n *Network) mutate(f func(t *topo)) {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	t := *n.topo.Load()
	f(&t)
	n.topo.Store(&t)
}

// FromMap builds a network over a geo.Map topology: sitesPerZone sites
// per zone, named "<zone>-<i>", arranged on a small ring inside the zone
// so intra-zone latency stays a fraction of the zone radius. Site IDs are
// returned in zone-major order, so sites[z*sitesPerZone : (z+1)*sitesPerZone]
// are exactly zone z's sites. This is the shared topology builder for the
// conformance suite, the harness experiments, and the examples.
func FromMap(cfg Config, m *geo.Map, sitesPerZone int) (*Network, []SiteID) {
	if sitesPerZone < 1 {
		sitesPerZone = 1
	}
	net := New(cfg)
	var sites []SiteID
	for _, z := range m.Zones() {
		for i := 0; i < sitesPerZone; i++ {
			ang := 2 * math.Pi * float64(i) / float64(sitesPerZone)
			r := z.Radius / 2
			pt := geo.Point{X: z.Center.X + r*math.Cos(ang), Y: z.Center.Y + r*math.Sin(ang)}
			sites = append(sites, net.AddSite(fmt.Sprintf("%s-%d", z.Name, i), pt, z.Name))
		}
	}
	return net, sites
}

// AddSite registers a site and returns its ID. Site names must be unique;
// registering a duplicate name returns the existing ID. Register sites
// before running traffic; AddSite invalidates the latency cache.
func (n *Network) AddSite(name string, loc geo.Point, zone string) SiteID {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	if id, ok := n.byName[name]; ok {
		return id
	}
	t := *n.topo.Load()
	id := SiteID(len(t.sites))
	t.sites = append(t.sites, Site{ID: id, Name: name, Loc: loc, Zone: zone})
	t.down = append(t.down, false)
	t.counters = append(t.counters, siteCounters{})
	if t.cell != nil {
		t.cell = append(t.cell, 0)
	}
	// Any cached pair latencies are for the old site count.
	t.latBase = nil
	t.tooBig = len(t.sites) > maxCachedSites
	n.byName[name] = id
	n.topo.Store(&t)
	return id
}

// withLatCache returns a snapshot whose latency table is built, building
// it once per topology generation. Called off the measured path: the
// first send after topology construction pays it.
func (n *Network) withLatCache() *topo {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	t := n.topo.Load()
	if t.latBase != nil || t.tooBig || len(t.sites) == 0 {
		return t
	}
	nt := *t
	num := len(nt.sites)
	tbl := make([]time.Duration, num*num)
	for i := 0; i < num; i++ {
		for j := 0; j < num; j++ {
			if i == j {
				continue // loopback takes the LocalDelay path, never the table
			}
			dist := nt.sites[i].Loc.Distance(nt.sites[j].Loc)
			tbl[i*num+j] = n.cfg.PerMessage + time.Duration(dist*float64(n.cfg.PropagationPerKm))
		}
	}
	nt.latBase = tbl
	n.topo.Store(&nt)
	return &nt
}

// RandomTopology builds a cfg-configured network over a seeded random
// continental-scale layout: the given number of 50 km zones scattered on
// a 12,000 km plane (geo.RandomLayout), sitesPerZone sites each. It is
// the shared
// topology source for the conformance suite's scale sweeps, the
// survivability experiment (E14), and the examples — one place owns the
// scale constants so they cannot drift apart.
func RandomTopology(cfg Config, zones, sitesPerZone int, seed uint64) (*Network, []SiteID) {
	return FromMap(cfg, geo.RandomLayout(zones, 12000, 50, seed), sitesPerZone)
}

// Site returns the site with the given ID.
func (n *Network) Site(id SiteID) (Site, error) {
	t := n.topo.Load()
	if int(id) < 0 || int(id) >= len(t.sites) {
		return Site{}, fmt.Errorf("%w: %d", ErrNoSuchSite, id)
	}
	return t.sites[id], nil
}

// SiteByName returns the ID of the named site, or InvalidSite.
func (n *Network) SiteByName(name string) SiteID {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	if id, ok := n.byName[name]; ok {
		return id
	}
	return InvalidSite
}

// NumSites returns the number of registered sites.
func (n *Network) NumSites() int {
	return len(n.topo.Load().sites)
}

// Sites returns a copy of all registered sites.
func (n *Network) Sites() []Site {
	t := n.topo.Load()
	out := make([]Site, len(t.sites))
	copy(out, t.sites)
	return out
}

// Fail marks a site as down; subsequent sends to it return ErrSiteDown.
func (n *Network) Fail(id SiteID) {
	n.mutate(func(t *topo) {
		if int(id) < 0 || int(id) >= len(t.down) {
			return
		}
		down := make([]bool, len(t.down))
		copy(down, t.down)
		down[id] = true
		t.down = down
	})
}

// Heal marks a site as up again.
func (n *Network) Heal(id SiteID) {
	n.mutate(func(t *topo) {
		if int(id) < 0 || int(id) >= len(t.down) {
			return
		}
		down := make([]bool, len(t.down))
		copy(down, t.down)
		down[id] = false
		t.down = down
	})
}

// IsDown reports whether the site is failed.
func (n *Network) IsDown(id SiteID) bool {
	t := n.topo.Load()
	return int(id) >= 0 && int(id) < len(t.down) && t.down[id]
}

// UpCount reports how many registered sites are currently up — the
// "sites up" gauge of the ops surface. One O(sites) scan over the
// immutable snapshot, called once per sampling round, never per send.
func (n *Network) UpCount() int {
	t := n.topo.Load()
	up := 0
	for _, d := range t.down {
		if !d {
			up++
		}
	}
	return up
}

// SetLossRate changes the global inter-site packet-loss probability.
func (n *Network) SetLossRate(rate float64) {
	n.mutate(func(t *topo) { t.lossRate = rate })
}

// SetLinkLoss overrides the loss probability of the directed link
// from→to (e.g. one congested transoceanic path). A negative rate clears
// the override.
func (n *Network) SetLinkLoss(from, to SiteID, rate float64) {
	n.mutate(func(t *topo) {
		ll := make(map[uint64]float64, len(t.linkLoss)+1)
		for k, v := range t.linkLoss {
			ll[k] = v
		}
		if rate < 0 {
			delete(ll, linkKey(from, to))
		} else {
			ll[linkKey(from, to)] = rate
		}
		t.linkLoss = ll
		t.hasLinkLoss = len(ll) > 0
	})
}

// linkKey packs a directed site pair into one map key.
func linkKey(from, to SiteID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// Partition splits the network into the given cells: sites in different
// cells cannot exchange messages until HealPartition. Sites not listed in
// any cell form one implicit cell of their own, so Partition(minority)
// cuts the minority off from everyone else.
func (n *Network) Partition(cells ...[]SiteID) {
	n.mutate(func(t *topo) {
		cell := make([]int32, len(t.sites))
		// Explicit cells are numbered from 1; unlisted sites read as the
		// implicit cell 0, so a single explicit cell still partitions.
		for ci, c := range cells {
			for _, s := range c {
				if int(s) >= 0 && int(s) < len(cell) {
					cell[s] = int32(ci + 1)
				}
			}
		}
		t.cell = cell
	})
}

// HealPartition reconnects all partition cells.
func (n *Network) HealPartition() {
	n.mutate(func(t *topo) { t.cell = nil })
}

// Partitioned reports whether a partition currently separates a and b.
func (n *Network) Partitioned(a, b SiteID) bool {
	t := n.topo.Load()
	return t.cell != nil && t.cellOf(a) != t.cellOf(b)
}

// Latency returns the one-way latency for a message of the given size
// between two sites, without sending anything.
func (n *Network) Latency(from, to SiteID, bytes int) (time.Duration, error) {
	t := n.topo.Load()
	if t.latBase == nil && !t.tooBig && len(t.sites) > 0 {
		t = n.withLatCache()
	}
	if int(from) < 0 || int(from) >= len(t.sites) {
		return 0, fmt.Errorf("%w: from %d", ErrNoSuchSite, from)
	}
	if int(to) < 0 || int(to) >= len(t.sites) {
		return 0, fmt.Errorf("%w: to %d", ErrNoSuchSite, to)
	}
	if from == to {
		return n.cfg.LocalDelay, nil
	}
	return n.baseLatency(t, from, to) + n.xmitTime(bytes), nil
}

// baseLatency returns PerMessage + propagation for a valid, non-loopback
// pair, from the snapshot's cache when it is built.
func (n *Network) baseLatency(t *topo, from, to SiteID) time.Duration {
	if t.latBase != nil {
		return t.latBase[int(from)*len(t.sites)+int(to)]
	}
	dist := t.sites[from].Loc.Distance(t.sites[to].Loc)
	return n.cfg.PerMessage + time.Duration(dist*float64(n.cfg.PropagationPerKm))
}

// xmitTime is the transmission (serialization) time of a payload.
func (n *Network) xmitTime(bytes int) time.Duration {
	return time.Duration(float64(bytes) / float64(n.cfg.BytesPerSecond) * float64(time.Second))
}

// Send delivers a one-way message of the given size and returns the
// simulated latency. Bytes and message counts are accounted; messages to
// or from a failed site return ErrSiteDown and messages across a
// partition return ErrPartitioned — neither is accounted, since nothing
// was transmitted. A message dropped by packet loss IS accounted (its
// bandwidth was spent) and returns ErrMsgLost together with the latency
// the sender wasted before detecting the loss.
//
// The fault-free path performs no heap allocations, and fault returns
// are the pre-built exported sentinels (also allocation-free).
func (n *Network) Send(from, to SiteID, bytes int) (time.Duration, error) {
	t := n.topo.Load()
	if t.latBase == nil && !t.tooBig && len(t.sites) > 0 {
		t = n.withLatCache()
	}
	if int(from) < 0 || int(from) >= len(t.sites) {
		return 0, fmt.Errorf("%w: from %d", ErrNoSuchSite, from)
	}
	if int(to) < 0 || int(to) >= len(t.sites) {
		return 0, fmt.Errorf("%w: to %d", ErrNoSuchSite, to)
	}
	if t.down[to] || t.down[from] {
		return 0, ErrSiteDown
	}
	if t.cell != nil && t.cellOf(from) != t.cellOf(to) {
		return 0, ErrPartitioned
	}

	var d time.Duration
	lost := false
	if from == to {
		d = n.cfg.LocalDelay
	} else {
		d = n.baseLatency(t, from, to) + n.xmitTime(bytes)
		rate := t.lossRate
		if t.hasLinkLoss {
			if r, ok := t.linkLoss[linkKey(from, to)]; ok {
				rate = r
			}
		}
		// Draw only on lossy links so pristine runs consume no randomness
		// (keeps the zero Config byte-for-byte identical to the pre-fault
		// simulator).
		if rate > 0 {
			n.rngMu.Lock()
			lost = n.rng.Float64() < rate
			n.rngMu.Unlock()
		}
	}

	crossZone := t.sites[from].Zone != t.sites[to].Zone
	b := int64(bytes)

	// Sender-side accounting: the global aggregates attribute to
	// shard(from), which also guards site from's out-counters.
	gs := &n.shards[int(from)&statShardMask]
	gs.mu.Lock()
	gs.msgs++
	gs.bytes += b
	gs.delayNs += int64(d)
	if crossZone {
		gs.wanBytes += b
		gs.wanMsgs++
	} else {
		gs.localMsgs++
	}
	src := &t.counters[from]
	src.msgsOut++
	src.bytesOut += b
	if lost {
		gs.dropped++
		gs.droppedBytes += b
		gs.mu.Unlock()
		return d, ErrMsgLost
	}
	gs.mu.Unlock()

	// Receiver-side accounting under the receiver's shard.
	rs := &n.shards[int(to)&statShardMask]
	rs.mu.Lock()
	dst := &t.counters[to]
	dst.msgsIn++
	dst.bytesIn += b
	rs.mu.Unlock()
	return d, nil
}

// Call performs a request/response exchange and returns the summed
// round-trip latency. On failure the returned duration preserves the
// time already spent — including a lost leg's latency, matching Send's
// contract — so retry loops account the true critical-path cost.
func (n *Network) Call(from, to SiteID, reqBytes, respBytes int) (time.Duration, error) {
	d1, err := n.Send(from, to, reqBytes)
	if err != nil {
		return d1, err
	}
	d2, err := n.Send(to, from, respBytes)
	return d1 + d2, err
}

// Broadcast sends the same payload from one site to every other site and
// returns the maximum one-way latency (the fan-out completes when the last
// replica hears it). Failed, partitioned, and lossy destinations are
// skipped and counted. Site IDs are dense, so the fan-out iterates them
// directly instead of copying the whole site table per call.
func (n *Network) Broadcast(from SiteID, bytes int) (time.Duration, int, error) {
	num := SiteID(len(n.topo.Load().sites))
	var maxD time.Duration
	skipped := 0
	for to := SiteID(0); to < num; to++ {
		if to == from {
			continue
		}
		d, err := n.Send(from, to, bytes)
		if Unavailable(err) {
			skipped++
			continue
		}
		if err != nil {
			return maxD, skipped, err
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD, skipped, nil
}

// Stats returns a snapshot of global traffic accounting, aggregated over
// the stat shards — O(shards), independent of the site count.
func (n *Network) Stats() Stats {
	var st Stats
	for i := range n.shards {
		g := &n.shards[i]
		g.mu.Lock()
		st.Messages += g.msgs
		st.Bytes += g.bytes
		st.WANBytes += g.wanBytes
		st.WANMsgs += g.wanMsgs
		st.LocalMsgs += g.localMsgs
		st.TotalDelay += time.Duration(g.delayNs)
		st.DroppedMsgs += g.dropped
		st.DroppedBytes += g.droppedBytes
		g.mu.Unlock()
	}
	return st
}

// SiteStats returns a snapshot of per-site accounting.
func (n *Network) SiteStats(id SiteID) SiteStats {
	t := n.topo.Load()
	if int(id) < 0 || int(id) >= len(t.counters) {
		return SiteStats{}
	}
	sh := &n.shards[int(id)&statShardMask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := &t.counters[id]
	return SiteStats{
		MsgsIn:   c.msgsIn,
		MsgsOut:  c.msgsOut,
		BytesIn:  c.bytesIn,
		BytesOut: c.bytesOut,
	}
}

// ResetStats zeroes all accounting without touching topology.
func (n *Network) ResetStats() {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	t := n.topo.Load()
	for i := range n.shards {
		g := &n.shards[i]
		g.mu.Lock()
		g.msgs, g.bytes, g.wanBytes, g.wanMsgs = 0, 0, 0, 0
		g.localMsgs, g.delayNs, g.dropped, g.droppedBytes = 0, 0, 0, 0
		g.mu.Unlock()
	}
	for i := range t.counters {
		sh := &n.shards[i&statShardMask]
		sh.mu.Lock()
		t.counters[i] = siteCounters{}
		sh.mu.Unlock()
	}
}
