// Package netsim is a deterministic wide-area network simulator. Every
// distributed architecture model in this reproduction (central warehouse,
// distributed/federated databases, soft-state services, hierarchical
// namespaces, DHTs, and distributed PASS) exchanges messages through a
// Network, which charges simulated latency for propagation, per-message
// overhead, and transmission time, and accounts every byte that crosses a
// link. The paper's "Resource Consumption" criterion (Section IV) is
// measured directly from these accounts.
//
// The simulator is intentionally synchronous and deterministic: a Send
// returns the latency the message would have experienced rather than
// sleeping, so experiments are exactly reproducible and fast. Latency is
// additive along multi-hop paths, matching how the architecture models
// compose calls.
//
// # Fault injection
//
// The network can inject three failure classes, all deterministic under
// Config.Seed:
//
//   - Packet loss: Config.LossRate (or a per-link override via
//     SetLinkLoss) drops each inter-site message with the given
//     probability. A lost message still consumed link bandwidth, so its
//     bytes ARE accounted (plus the Dropped counters); the caller gets
//     ErrMsgLost with the latency it wasted finding out. Loopback
//     messages never drop.
//   - Site crashes: Fail marks a site down; sends to or from it return
//     ErrSiteDown (unaccounted — nothing was transmitted). Heal recovers.
//   - Partitions: Partition splits sites into cells; messages across a
//     cell boundary return ErrPartitioned (unaccounted). HealPartition
//     reconnects everyone.
//
// Unavailable distinguishes these injected faults from programming errors
// (ErrNoSuchSite), so models can retry or degrade on the former and fail
// fast on the latter.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"pass/internal/geo"
	"pass/internal/xrand"
)

// SiteID identifies a site (host) in the simulated network.
type SiteID int

// InvalidSite is returned by lookups that fail.
const InvalidSite SiteID = -1

// Site is a participating host: a storage node, a warehouse, a sensor
// gateway, or a consumer's query terminal.
type Site struct {
	ID   SiteID
	Name string
	Loc  geo.Point
	Zone string // name of the locality zone the site belongs to
}

// Config sets the latency and bandwidth model.
type Config struct {
	// PropagationPerKm is the one-way propagation delay per kilometre.
	// Default: 5µs/km (speed of light in fibre ≈ 200,000 km/s).
	PropagationPerKm time.Duration
	// PerMessage is fixed per-message processing/queueing overhead.
	// Default: 200µs.
	PerMessage time.Duration
	// BytesPerSecond is link bandwidth. Default: 100 MB/s.
	BytesPerSecond int64
	// LocalDelay is the latency of a message a site sends to itself
	// (loopback / same rack). Default: 20µs.
	LocalDelay time.Duration
	// LossRate is the probability in [0, 1) that an inter-site message
	// is dropped in transit. Default: 0 (pristine network). Loopback
	// messages never drop.
	LossRate float64
	// Seed seeds the deterministic loss generator; 0 selects a fixed
	// default, so the zero Config remains fully reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.PropagationPerKm <= 0 {
		c.PropagationPerKm = 5 * time.Microsecond
	}
	if c.PerMessage <= 0 {
		c.PerMessage = 200 * time.Microsecond
	}
	if c.BytesPerSecond <= 0 {
		c.BytesPerSecond = 100 << 20
	}
	if c.LocalDelay <= 0 {
		c.LocalDelay = 20 * time.Microsecond
	}
	return c
}

// Stats is a snapshot of traffic accounting.
type Stats struct {
	Messages   int64 // total messages transmitted (delivered + dropped)
	Bytes      int64 // total bytes transmitted
	WANBytes   int64 // bytes crossing zone boundaries
	WANMsgs    int64 // messages crossing zone boundaries
	LocalMsgs  int64 // messages within one zone (incl. loopback)
	TotalDelay time.Duration
	// DroppedMsgs / DroppedBytes count messages lost in transit: their
	// bandwidth was spent (included in the totals above) but they never
	// arrived.
	DroppedMsgs  int64
	DroppedBytes int64
}

// ErrSiteDown is returned when a message targets a failed site.
var ErrSiteDown = errors.New("netsim: site is down")

// ErrMsgLost is returned when a message is dropped in transit by the
// configured packet-loss rate.
var ErrMsgLost = errors.New("netsim: message lost in transit")

// ErrPartitioned is returned when sender and receiver sit in different
// partition cells.
var ErrPartitioned = errors.New("netsim: sites are partitioned")

// ErrNoSuchSite is returned for unknown site IDs.
var ErrNoSuchSite = errors.New("netsim: no such site")

// Unavailable reports whether err is an injected fault — a down site, a
// lost message, or a partition — as opposed to a programming error such
// as an unknown site. Models retry or degrade on unavailable errors and
// fail fast on everything else.
func Unavailable(err error) bool {
	return errors.Is(err, ErrSiteDown) || errors.Is(err, ErrMsgLost) || errors.Is(err, ErrPartitioned)
}

// Network is the simulated network. Safe for concurrent use.
type Network struct {
	cfg Config

	mu       sync.Mutex
	sites    []Site
	byName   map[string]SiteID
	down     map[SiteID]bool
	stats    Stats
	perSite  map[SiteID]*SiteStats
	rng      *xrand.Rand
	lossRate float64
	linkLoss map[[2]SiteID]float64
	// cell maps each site to its partition cell; nil means no partition.
	// Sites absent from the map belong to cell 0.
	cell map[SiteID]int
}

// SiteStats accounts per-site traffic.
type SiteStats struct {
	MsgsIn, MsgsOut   int64
	BytesIn, BytesOut int64
}

// New returns a network with the given configuration (zero value = defaults).
func New(cfg Config) *Network {
	return &Network{
		cfg:      cfg.withDefaults(),
		byName:   make(map[string]SiteID),
		down:     make(map[SiteID]bool),
		perSite:  make(map[SiteID]*SiteStats),
		rng:      xrand.New(cfg.Seed),
		lossRate: cfg.LossRate,
		linkLoss: make(map[[2]SiteID]float64),
	}
}

// FromMap builds a network over a geo.Map topology: sitesPerZone sites
// per zone, named "<zone>-<i>", arranged on a small ring inside the zone
// so intra-zone latency stays a fraction of the zone radius. Site IDs are
// returned in zone-major order, so sites[z*sitesPerZone : (z+1)*sitesPerZone]
// are exactly zone z's sites. This is the shared topology builder for the
// conformance suite, the harness experiments, and the examples.
func FromMap(cfg Config, m *geo.Map, sitesPerZone int) (*Network, []SiteID) {
	if sitesPerZone < 1 {
		sitesPerZone = 1
	}
	net := New(cfg)
	var sites []SiteID
	for _, z := range m.Zones() {
		for i := 0; i < sitesPerZone; i++ {
			ang := 2 * math.Pi * float64(i) / float64(sitesPerZone)
			r := z.Radius / 2
			pt := geo.Point{X: z.Center.X + r*math.Cos(ang), Y: z.Center.Y + r*math.Sin(ang)}
			sites = append(sites, net.AddSite(fmt.Sprintf("%s-%d", z.Name, i), pt, z.Name))
		}
	}
	return net, sites
}

// AddSite registers a site and returns its ID. Site names must be unique;
// registering a duplicate name returns the existing ID.
func (n *Network) AddSite(name string, loc geo.Point, zone string) SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id, ok := n.byName[name]; ok {
		return id
	}
	id := SiteID(len(n.sites))
	n.sites = append(n.sites, Site{ID: id, Name: name, Loc: loc, Zone: zone})
	n.byName[name] = id
	n.perSite[id] = &SiteStats{}
	return id
}

// RandomTopology builds a cfg-configured network over a seeded random
// continental-scale layout: the given number of 50 km zones scattered on
// a 12,000 km plane (geo.RandomLayout), sitesPerZone sites each. It is
// the shared
// topology source for the conformance suite's scale sweeps, the
// survivability experiment (E14), and the examples — one place owns the
// scale constants so they cannot drift apart.
func RandomTopology(cfg Config, zones, sitesPerZone int, seed uint64) (*Network, []SiteID) {
	return FromMap(cfg, geo.RandomLayout(zones, 12000, 50, seed), sitesPerZone)
}

// Site returns the site with the given ID.
func (n *Network) Site(id SiteID) (Site, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) < 0 || int(id) >= len(n.sites) {
		return Site{}, fmt.Errorf("%w: %d", ErrNoSuchSite, id)
	}
	return n.sites[id], nil
}

// SiteByName returns the ID of the named site, or InvalidSite.
func (n *Network) SiteByName(name string) SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id, ok := n.byName[name]; ok {
		return id
	}
	return InvalidSite
}

// NumSites returns the number of registered sites.
func (n *Network) NumSites() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sites)
}

// Sites returns a copy of all registered sites.
func (n *Network) Sites() []Site {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Site, len(n.sites))
	copy(out, n.sites)
	return out
}

// Fail marks a site as down; subsequent sends to it return ErrSiteDown.
func (n *Network) Fail(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = true
}

// Heal marks a site as up again.
func (n *Network) Heal(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, id)
}

// IsDown reports whether the site is failed.
func (n *Network) IsDown(id SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[id]
}

// SetLossRate changes the global inter-site packet-loss probability.
func (n *Network) SetLossRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = rate
}

// SetLinkLoss overrides the loss probability of the directed link
// from→to (e.g. one congested transoceanic path). A negative rate clears
// the override.
func (n *Network) SetLinkLoss(from, to SiteID, rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		delete(n.linkLoss, [2]SiteID{from, to})
		return
	}
	n.linkLoss[[2]SiteID{from, to}] = rate
}

// Partition splits the network into the given cells: sites in different
// cells cannot exchange messages until HealPartition. Sites not listed in
// any cell form one implicit cell of their own, so Partition(minority)
// cuts the minority off from everyone else.
func (n *Network) Partition(cells ...[]SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cell = make(map[SiteID]int)
	// Explicit cells are numbered from 1; unlisted sites read as the
	// implicit cell 0, so a single explicit cell still partitions.
	for ci, c := range cells {
		for _, s := range c {
			n.cell[s] = ci + 1
		}
	}
}

// HealPartition reconnects all partition cells.
func (n *Network) HealPartition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cell = nil
}

// Partitioned reports whether a partition currently separates a and b.
func (n *Network) Partitioned(a, b SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cell != nil && n.cell[a] != n.cell[b]
}

// Latency returns the one-way latency for a message of the given size
// between two sites, without sending anything.
func (n *Network) Latency(from, to SiteID, bytes int) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.latencyLocked(from, to, bytes)
}

func (n *Network) latencyLocked(from, to SiteID, bytes int) (time.Duration, error) {
	if int(from) < 0 || int(from) >= len(n.sites) {
		return 0, fmt.Errorf("%w: from %d", ErrNoSuchSite, from)
	}
	if int(to) < 0 || int(to) >= len(n.sites) {
		return 0, fmt.Errorf("%w: to %d", ErrNoSuchSite, to)
	}
	if from == to {
		return n.cfg.LocalDelay, nil
	}
	dist := n.sites[from].Loc.Distance(n.sites[to].Loc)
	prop := time.Duration(dist * float64(n.cfg.PropagationPerKm))
	xmit := time.Duration(float64(bytes) / float64(n.cfg.BytesPerSecond) * float64(time.Second))
	return n.cfg.PerMessage + prop + xmit, nil
}

// Send delivers a one-way message of the given size and returns the
// simulated latency. Bytes and message counts are accounted; messages to
// or from a failed site return ErrSiteDown and messages across a
// partition return ErrPartitioned — neither is accounted, since nothing
// was transmitted. A message dropped by packet loss IS accounted (its
// bandwidth was spent) and returns ErrMsgLost together with the latency
// the sender wasted before detecting the loss.
func (n *Network) Send(from, to SiteID, bytes int) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(from) < 0 || int(from) >= len(n.sites) {
		return 0, fmt.Errorf("%w: from %d", ErrNoSuchSite, from)
	}
	if int(to) < 0 || int(to) >= len(n.sites) {
		return 0, fmt.Errorf("%w: to %d", ErrNoSuchSite, to)
	}
	if n.down[to] {
		return 0, fmt.Errorf("%w: %s", ErrSiteDown, n.sites[to].Name)
	}
	if n.down[from] {
		return 0, fmt.Errorf("%w: %s", ErrSiteDown, n.sites[from].Name)
	}
	if n.cell != nil && n.cell[from] != n.cell[to] {
		return 0, fmt.Errorf("%w: %s | %s", ErrPartitioned, n.sites[from].Name, n.sites[to].Name)
	}
	d, err := n.latencyLocked(from, to, bytes)
	if err != nil {
		return 0, err
	}
	lost := false
	if from != to {
		rate := n.lossRate
		if r, ok := n.linkLoss[[2]SiteID{from, to}]; ok {
			rate = r
		}
		// Draw only on lossy links so pristine runs consume no randomness
		// (keeps the zero Config byte-for-byte identical to the pre-fault
		// simulator).
		if rate > 0 && n.rng.Float64() < rate {
			lost = true
		}
	}
	n.stats.Messages++
	n.stats.Bytes += int64(bytes)
	n.stats.TotalDelay += d
	crossZone := n.sites[from].Zone != n.sites[to].Zone
	if crossZone {
		n.stats.WANBytes += int64(bytes)
		n.stats.WANMsgs++
	} else {
		n.stats.LocalMsgs++
	}
	n.perSite[from].MsgsOut++
	n.perSite[from].BytesOut += int64(bytes)
	if lost {
		n.stats.DroppedMsgs++
		n.stats.DroppedBytes += int64(bytes)
		return d, fmt.Errorf("%w: %s -> %s", ErrMsgLost, n.sites[from].Name, n.sites[to].Name)
	}
	n.perSite[to].MsgsIn++
	n.perSite[to].BytesIn += int64(bytes)
	return d, nil
}

// Call performs a request/response exchange and returns the summed
// round-trip latency. On failure the returned duration preserves the
// time already spent — including a lost leg's latency, matching Send's
// contract — so retry loops account the true critical-path cost.
func (n *Network) Call(from, to SiteID, reqBytes, respBytes int) (time.Duration, error) {
	d1, err := n.Send(from, to, reqBytes)
	if err != nil {
		return d1, err
	}
	d2, err := n.Send(to, from, respBytes)
	return d1 + d2, err
}

// Broadcast sends the same payload from one site to every other site and
// returns the maximum one-way latency (the fan-out completes when the last
// replica hears it). Failed, partitioned, and lossy destinations are
// skipped and counted.
func (n *Network) Broadcast(from SiteID, bytes int) (time.Duration, int, error) {
	var maxD time.Duration
	skipped := 0
	for _, s := range n.Sites() {
		if s.ID == from {
			continue
		}
		d, err := n.Send(from, s.ID, bytes)
		if Unavailable(err) {
			skipped++
			continue
		}
		if err != nil {
			return maxD, skipped, err
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD, skipped, nil
}

// Stats returns a snapshot of global traffic accounting.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// SiteStats returns a snapshot of per-site accounting.
func (n *Network) SiteStats(id SiteID) SiteStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.perSite[id]; ok {
		return *s
	}
	return SiteStats{}
}

// ResetStats zeroes all accounting without touching topology.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	for id := range n.perSite {
		n.perSite[id] = &SiteStats{}
	}
}
