// Package netsim is a deterministic wide-area network simulator. Every
// distributed architecture model in this reproduction (central warehouse,
// distributed/federated databases, soft-state services, hierarchical
// namespaces, DHTs, and distributed PASS) exchanges messages through a
// Network, which charges simulated latency for propagation, per-message
// overhead, and transmission time, and accounts every byte that crosses a
// link. The paper's "Resource Consumption" criterion (Section IV) is
// measured directly from these accounts.
//
// The simulator is intentionally synchronous and deterministic: a Send
// returns the latency the message would have experienced rather than
// sleeping, so experiments are exactly reproducible and fast. Latency is
// additive along multi-hop paths, matching how the architecture models
// compose calls.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pass/internal/geo"
)

// SiteID identifies a site (host) in the simulated network.
type SiteID int

// InvalidSite is returned by lookups that fail.
const InvalidSite SiteID = -1

// Site is a participating host: a storage node, a warehouse, a sensor
// gateway, or a consumer's query terminal.
type Site struct {
	ID   SiteID
	Name string
	Loc  geo.Point
	Zone string // name of the locality zone the site belongs to
}

// Config sets the latency and bandwidth model.
type Config struct {
	// PropagationPerKm is the one-way propagation delay per kilometre.
	// Default: 5µs/km (speed of light in fibre ≈ 200,000 km/s).
	PropagationPerKm time.Duration
	// PerMessage is fixed per-message processing/queueing overhead.
	// Default: 200µs.
	PerMessage time.Duration
	// BytesPerSecond is link bandwidth. Default: 100 MB/s.
	BytesPerSecond int64
	// LocalDelay is the latency of a message a site sends to itself
	// (loopback / same rack). Default: 20µs.
	LocalDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.PropagationPerKm <= 0 {
		c.PropagationPerKm = 5 * time.Microsecond
	}
	if c.PerMessage <= 0 {
		c.PerMessage = 200 * time.Microsecond
	}
	if c.BytesPerSecond <= 0 {
		c.BytesPerSecond = 100 << 20
	}
	if c.LocalDelay <= 0 {
		c.LocalDelay = 20 * time.Microsecond
	}
	return c
}

// Stats is a snapshot of traffic accounting.
type Stats struct {
	Messages   int64 // total messages sent
	Bytes      int64 // total bytes sent
	WANBytes   int64 // bytes crossing zone boundaries
	WANMsgs    int64 // messages crossing zone boundaries
	LocalMsgs  int64 // messages within one zone (incl. loopback)
	TotalDelay time.Duration
}

// ErrSiteDown is returned when a message targets a failed site.
var ErrSiteDown = errors.New("netsim: site is down")

// ErrNoSuchSite is returned for unknown site IDs.
var ErrNoSuchSite = errors.New("netsim: no such site")

// Network is the simulated network. Safe for concurrent use.
type Network struct {
	cfg Config

	mu      sync.Mutex
	sites   []Site
	byName  map[string]SiteID
	down    map[SiteID]bool
	stats   Stats
	perSite map[SiteID]*SiteStats
}

// SiteStats accounts per-site traffic.
type SiteStats struct {
	MsgsIn, MsgsOut   int64
	BytesIn, BytesOut int64
}

// New returns a network with the given configuration (zero value = defaults).
func New(cfg Config) *Network {
	return &Network{
		cfg:     cfg.withDefaults(),
		byName:  make(map[string]SiteID),
		down:    make(map[SiteID]bool),
		perSite: make(map[SiteID]*SiteStats),
	}
}

// AddSite registers a site and returns its ID. Site names must be unique;
// registering a duplicate name returns the existing ID.
func (n *Network) AddSite(name string, loc geo.Point, zone string) SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id, ok := n.byName[name]; ok {
		return id
	}
	id := SiteID(len(n.sites))
	n.sites = append(n.sites, Site{ID: id, Name: name, Loc: loc, Zone: zone})
	n.byName[name] = id
	n.perSite[id] = &SiteStats{}
	return id
}

// Site returns the site with the given ID.
func (n *Network) Site(id SiteID) (Site, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) < 0 || int(id) >= len(n.sites) {
		return Site{}, fmt.Errorf("%w: %d", ErrNoSuchSite, id)
	}
	return n.sites[id], nil
}

// SiteByName returns the ID of the named site, or InvalidSite.
func (n *Network) SiteByName(name string) SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id, ok := n.byName[name]; ok {
		return id
	}
	return InvalidSite
}

// NumSites returns the number of registered sites.
func (n *Network) NumSites() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sites)
}

// Sites returns a copy of all registered sites.
func (n *Network) Sites() []Site {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Site, len(n.sites))
	copy(out, n.sites)
	return out
}

// Fail marks a site as down; subsequent sends to it return ErrSiteDown.
func (n *Network) Fail(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = true
}

// Heal marks a site as up again.
func (n *Network) Heal(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, id)
}

// IsDown reports whether the site is failed.
func (n *Network) IsDown(id SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[id]
}

// Latency returns the one-way latency for a message of the given size
// between two sites, without sending anything.
func (n *Network) Latency(from, to SiteID, bytes int) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.latencyLocked(from, to, bytes)
}

func (n *Network) latencyLocked(from, to SiteID, bytes int) (time.Duration, error) {
	if int(from) < 0 || int(from) >= len(n.sites) {
		return 0, fmt.Errorf("%w: from %d", ErrNoSuchSite, from)
	}
	if int(to) < 0 || int(to) >= len(n.sites) {
		return 0, fmt.Errorf("%w: to %d", ErrNoSuchSite, to)
	}
	if from == to {
		return n.cfg.LocalDelay, nil
	}
	dist := n.sites[from].Loc.Distance(n.sites[to].Loc)
	prop := time.Duration(dist * float64(n.cfg.PropagationPerKm))
	xmit := time.Duration(float64(bytes) / float64(n.cfg.BytesPerSecond) * float64(time.Second))
	return n.cfg.PerMessage + prop + xmit, nil
}

// Send delivers a one-way message of the given size and returns the
// simulated latency. Bytes and message counts are accounted; messages to a
// failed destination return ErrSiteDown (and are not accounted).
func (n *Network) Send(from, to SiteID, bytes int) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[to] {
		return 0, fmt.Errorf("%w: %s", ErrSiteDown, n.sites[to].Name)
	}
	if n.down[from] {
		return 0, fmt.Errorf("%w: %s", ErrSiteDown, n.sites[from].Name)
	}
	d, err := n.latencyLocked(from, to, bytes)
	if err != nil {
		return 0, err
	}
	n.stats.Messages++
	n.stats.Bytes += int64(bytes)
	n.stats.TotalDelay += d
	crossZone := n.sites[from].Zone != n.sites[to].Zone
	if crossZone {
		n.stats.WANBytes += int64(bytes)
		n.stats.WANMsgs++
	} else {
		n.stats.LocalMsgs++
	}
	n.perSite[from].MsgsOut++
	n.perSite[from].BytesOut += int64(bytes)
	n.perSite[to].MsgsIn++
	n.perSite[to].BytesIn += int64(bytes)
	return d, nil
}

// Call performs a request/response exchange and returns the summed
// round-trip latency.
func (n *Network) Call(from, to SiteID, reqBytes, respBytes int) (time.Duration, error) {
	d1, err := n.Send(from, to, reqBytes)
	if err != nil {
		return 0, err
	}
	d2, err := n.Send(to, from, respBytes)
	if err != nil {
		return d1, err
	}
	return d1 + d2, nil
}

// Broadcast sends the same payload from one site to every other site and
// returns the maximum one-way latency (the fan-out completes when the last
// replica hears it). Failed destinations are skipped and counted.
func (n *Network) Broadcast(from SiteID, bytes int) (time.Duration, int, error) {
	var maxD time.Duration
	skipped := 0
	for _, s := range n.Sites() {
		if s.ID == from {
			continue
		}
		d, err := n.Send(from, s.ID, bytes)
		if errors.Is(err, ErrSiteDown) {
			skipped++
			continue
		}
		if err != nil {
			return maxD, skipped, err
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD, skipped, nil
}

// Stats returns a snapshot of global traffic accounting.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// SiteStats returns a snapshot of per-site accounting.
func (n *Network) SiteStats(id SiteID) SiteStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.perSite[id]; ok {
		return *s
	}
	return SiteStats{}
}

// ResetStats zeroes all accounting without touching topology.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	for id := range n.perSite {
		n.perSite[id] = &SiteStats{}
	}
}
