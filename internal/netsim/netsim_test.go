package netsim

import (
	"errors"
	"testing"
	"time"

	"pass/internal/geo"
)

func twoSiteNet(t *testing.T, dist float64) (*Network, SiteID, SiteID) {
	t.Helper()
	n := New(Config{})
	a := n.AddSite("a", geo.Point{X: 0, Y: 0}, "east")
	b := n.AddSite("b", geo.Point{X: dist, Y: 0}, "west")
	return n, a, b
}

func TestAddSiteAndLookup(t *testing.T) {
	n, a, b := twoSiteNet(t, 100)
	if a == b {
		t.Fatal("site IDs collide")
	}
	if got := n.SiteByName("a"); got != a {
		t.Fatalf("SiteByName(a) = %d, want %d", got, a)
	}
	if got := n.SiteByName("missing"); got != InvalidSite {
		t.Fatalf("SiteByName(missing) = %d, want InvalidSite", got)
	}
	if n.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", n.NumSites())
	}
	s, err := n.Site(a)
	if err != nil || s.Name != "a" {
		t.Fatalf("Site(a) = %+v, %v", s, err)
	}
	if _, err := n.Site(SiteID(99)); err == nil {
		t.Fatal("Site(99) should fail")
	}
}

func TestAddDuplicateName(t *testing.T) {
	n := New(Config{})
	a1 := n.AddSite("a", geo.Point{}, "z")
	a2 := n.AddSite("a", geo.Point{X: 50}, "z")
	if a1 != a2 {
		t.Fatalf("duplicate name produced new site: %d vs %d", a1, a2)
	}
	if n.NumSites() != 1 {
		t.Fatalf("NumSites = %d, want 1", n.NumSites())
	}
}

func TestLatencyScalesWithDistance(t *testing.T) {
	nNear, a1, b1 := twoSiteNet(t, 10)
	nFar, a2, b2 := twoSiteNet(t, 10000)
	dNear, err := nNear.Latency(a1, b1, 100)
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := nFar.Latency(a2, b2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dFar <= dNear {
		t.Fatalf("far latency %v <= near latency %v", dFar, dNear)
	}
}

func TestLatencyScalesWithSize(t *testing.T) {
	n, a, b := twoSiteNet(t, 100)
	dSmall, _ := n.Latency(a, b, 100)
	dLarge, _ := n.Latency(a, b, 100<<20)
	if dLarge <= dSmall {
		t.Fatalf("large payload latency %v <= small %v", dLarge, dSmall)
	}
}

func TestLoopbackLatency(t *testing.T) {
	n, a, _ := twoSiteNet(t, 100)
	d, err := n.Latency(a, a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 20*time.Microsecond {
		t.Fatalf("loopback = %v, want 20µs default", d)
	}
}

func TestSendAccounting(t *testing.T) {
	n, a, b := twoSiteNet(t, 100)
	if _, err := n.Send(a, b, 500); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Messages != 1 || st.Bytes != 500 {
		t.Fatalf("stats = %+v", st)
	}
	// a and b are in different zones -> WAN traffic.
	if st.WANBytes != 500 || st.WANMsgs != 1 {
		t.Fatalf("WAN accounting wrong: %+v", st)
	}
	ssa := n.SiteStats(a)
	ssb := n.SiteStats(b)
	if ssa.BytesOut != 500 || ssa.MsgsOut != 1 || ssb.BytesIn != 500 || ssb.MsgsIn != 1 {
		t.Fatalf("per-site stats wrong: a=%+v b=%+v", ssa, ssb)
	}
}

func TestSameZoneNotWAN(t *testing.T) {
	n := New(Config{})
	a := n.AddSite("a", geo.Point{}, "boston")
	b := n.AddSite("b", geo.Point{X: 5}, "boston")
	if _, err := n.Send(a, b, 100); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.WANBytes != 0 || st.LocalMsgs != 1 {
		t.Fatalf("intra-zone send misaccounted: %+v", st)
	}
}

func TestCallRoundTrip(t *testing.T) {
	n, a, b := twoSiteNet(t, 100)
	oneWay, _ := n.Latency(a, b, 100)
	rt, err := n.Call(a, b, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rt != 2*oneWay {
		t.Fatalf("round trip %v != 2 × one-way %v", rt, oneWay)
	}
	if n.Stats().Messages != 2 {
		t.Fatalf("messages = %d, want 2", n.Stats().Messages)
	}
}

func TestFailAndHeal(t *testing.T) {
	n, a, b := twoSiteNet(t, 100)
	n.Fail(b)
	if !n.IsDown(b) {
		t.Fatal("b should be down")
	}
	if _, err := n.Send(a, b, 10); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("send to failed site: err = %v, want ErrSiteDown", err)
	}
	if _, err := n.Send(b, a, 10); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("send from failed site: err = %v, want ErrSiteDown", err)
	}
	// Nothing accounted for failed sends.
	if st := n.Stats(); st.Messages != 0 {
		t.Fatalf("failed sends were accounted: %+v", st)
	}
	n.Heal(b)
	if _, err := n.Send(a, b, 10); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}

func TestBroadcast(t *testing.T) {
	n := New(Config{})
	src := n.AddSite("src", geo.Point{}, "z0")
	n.AddSite("near", geo.Point{X: 10}, "z1")
	n.AddSite("far", geo.Point{X: 10000}, "z2")
	down := n.AddSite("down", geo.Point{X: 20}, "z3")
	n.Fail(down)

	maxD, skipped, err := n.Broadcast(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	farLat, _ := n.Latency(src, n.SiteByName("far"), 100)
	if maxD != farLat {
		t.Fatalf("broadcast max %v != far latency %v", maxD, farLat)
	}
	if n.Stats().Messages != 2 {
		t.Fatalf("messages = %d, want 2", n.Stats().Messages)
	}
}

func TestResetStats(t *testing.T) {
	n, a, b := twoSiteNet(t, 100)
	_, _ = n.Send(a, b, 100)
	n.ResetStats()
	if st := n.Stats(); st.Messages != 0 || st.Bytes != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if ss := n.SiteStats(a); ss.MsgsOut != 0 {
		t.Fatalf("per-site stats not reset: %+v", ss)
	}
	if n.NumSites() != 2 {
		t.Fatal("reset destroyed topology")
	}
}

func TestLatencyUnknownSites(t *testing.T) {
	n, a, _ := twoSiteNet(t, 100)
	if _, err := n.Latency(SiteID(42), a, 1); !errors.Is(err, ErrNoSuchSite) {
		t.Fatalf("err = %v, want ErrNoSuchSite", err)
	}
	if _, err := n.Latency(a, SiteID(42), 1); !errors.Is(err, ErrNoSuchSite) {
		t.Fatalf("err = %v, want ErrNoSuchSite", err)
	}
}

func TestLatencyAdditivity(t *testing.T) {
	// Two short hops through a midpoint cost more than one direct hop
	// (per-message overhead charged twice) — this is what makes multi-hop
	// DHT routing expensive in E9.
	n := New(Config{})
	a := n.AddSite("a", geo.Point{}, "z")
	m := n.AddSite("m", geo.Point{X: 50}, "z")
	b := n.AddSite("b", geo.Point{X: 100}, "z")
	direct, _ := n.Latency(a, b, 100)
	h1, _ := n.Latency(a, m, 100)
	h2, _ := n.Latency(m, b, 100)
	if h1+h2 <= direct {
		t.Fatalf("two hops %v should exceed direct %v", h1+h2, direct)
	}
}
