// Command docscheck is the documentation gate (make docs-check, part of
// make check). It enforces two invariants that otherwise rot silently:
//
//   - Every package under internal/ and cmd/ carries a package comment,
//     so `go doc pass/internal/<pkg>` always explains what the package is
//     for and which part of the paper it models, and every binary's doc
//     comment states its usage and flags.
//   - README.md's experiment table lists exactly the experiments the
//     harness registry exposes — every registered ID appears as a table
//     row, and no table row names an unregistered ID. The registry is
//     imported directly (not parsed), so the check cannot itself drift.
//
// Usage:
//
//	docscheck [-root .]
//
// Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"pass/internal/harness"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var failures []string
	failures = append(failures, checkPackageComments(*root)...)
	failures = append(failures, checkReadmeTable(*root)...)

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("docscheck: package comments present, README experiment table matches the registry")
}

// checkPackageComments walks internal/ and cmd/ and requires each
// directory that holds non-test Go files to have a package comment on at
// least one of them.
func checkPackageComments(root string) []string {
	var failures []string
	seen := map[string]bool{} // dir -> has any non-test .go file
	documented := map[string]bool{}

	for _, tree := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, tree), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			seen[dir] = true
			if documented[dir] {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", path, err))
				return nil
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented[dir] = true
			}
			return nil
		})
		if err != nil {
			failures = append(failures, err.Error())
		}
	}
	for dir := range seen {
		if !documented[dir] {
			failures = append(failures, fmt.Sprintf("package %s has no package comment (go doc is blank)", dir))
		}
	}
	return failures
}

// experiment table rows look like "| E14 | ... |".
var tableRow = regexp.MustCompile(`^\|\s*(E\d+)\s*\|`)

// checkReadmeTable compares README.md's experiment table rows against
// harness.All().
func checkReadmeTable(root string) []string {
	readme := filepath.Join(root, "README.md")
	buf, err := os.ReadFile(readme)
	if err != nil {
		return []string{err.Error()}
	}
	inTable := map[string]bool{}
	for _, line := range strings.Split(string(buf), "\n") {
		if m := tableRow.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			inTable[m[1]] = true
		}
	}
	var failures []string
	registered := map[string]bool{}
	for _, e := range harness.All() {
		registered[e.ID] = true
		if !inTable[e.ID] {
			failures = append(failures, fmt.Sprintf("README.md experiment table is missing %s (%s)", e.ID, e.Title))
		}
	}
	for id := range inTable {
		if !registered[id] {
			failures = append(failures, fmt.Sprintf("README.md experiment table lists %s, which the harness registry does not know", id))
		}
	}
	return failures
}
