// Command passgen emits synthetic sensor workloads as CSV on stdout, in
// the reading format cmd/passctl ingests (sensor,unixnano,value[,label]).
// One tuple set (zone × window) is emitted per "--- set k=v ..." header
// line so a shell loop can split and ingest set by set.
//
// Usage:
//
//	passgen [-domain traffic] [-zones london,boston] [-windows 4]
//	        [-sensors 4] [-readings 10] [-window 1h] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pass/internal/workload"
)

func main() {
	domain := flag.String("domain", "traffic", "workload domain: traffic|medical|volcano|weather")
	zones := flag.String("zones", "london,boston", "comma-separated zone names")
	windows := flag.Int("windows", 4, "number of time windows")
	sensors := flag.Int("sensors", 4, "sensors per zone")
	readings := flag.Int("readings", 10, "readings per sensor per window")
	window := flag.Duration("window", time.Hour, "window duration")
	start := flag.String("start", "2005-04-05T00:00:00Z", "first window start (RFC3339)")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	startT, err := time.Parse(time.RFC3339, *start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "passgen: bad -start:", err)
		os.Exit(2)
	}
	sets := workload.Generate(workload.Config{
		Domain:            workload.Domain(*domain),
		Zones:             strings.Split(*zones, ","),
		Windows:           *windows,
		SensorsPerZone:    *sensors,
		ReadingsPerSensor: *readings,
		WindowDur:         *window,
		StartTime:         startT.UnixNano(),
		Seed:              *seed,
	})

	for _, g := range sets {
		var attrPairs []string
		for _, a := range g.Attrs {
			attrPairs = append(attrPairs, a.Key+"="+a.Value.AsString())
		}
		fmt.Printf("--- set %s\n", strings.Join(attrPairs, ","))
		for _, r := range g.Set.Readings {
			if r.Label != "" {
				fmt.Printf("%s,%d,%g,%s\n", r.SensorID, r.Time, r.Value, r.Label)
			} else {
				fmt.Printf("%s,%d,%g\n", r.SensorID, r.Time, r.Value)
			}
		}
	}
}
