// Command benchcheck compares a fresh passbench -json report against the
// committed baseline (BENCH_3.json) and fails on regressions, giving the
// repo a perf trajectory that CI can enforce (ROADMAP item).
//
// Usage:
//
//	benchcheck -baseline BENCH_3.json -current BENCH.json [-max-ratio 2.5] [-slack-ms 300] [-min-speedup 0]
//
// Checks, in order of severity:
//
//   - Baseline integrity: the baseline itself must contain a row for
//     every experiment registered in the harness. A baseline missing
//     registered rows is stale or was recorded from a partially failed
//     run, and comparing against it would silently shrink the gate —
//     benchcheck refuses and tells you to regenerate with `make bench`.
//   - Coverage: every experiment in the baseline must appear in the
//     current report — a silently dropped experiment is the worst kind of
//     regression. New experiments in the current report are fine (they
//     join the baseline when it is next regenerated).
//   - Runtime: an experiment whose wall-clock exceeds
//     baseline*max-ratio + slack-ms regresses the build. The ratio is
//     deliberately generous: the baseline may have been recorded on
//     different hardware, and wall-clock is noisy — this gate catches
//     accidental O(n) blowups (the feddb/hier probe-loop class of bug),
//     not single-digit-percent drift.
//   - Invariants: machine-independent sanity on the current findings —
//     every recall_* finding is a fraction in [0, 1], and every
//     recall_*_l0 (pristine-network survivability row) is exactly 1.
//     These hold on any hardware at any scale.
//   - Speedup (opt-in, -min-speedup > 0): the whole-suite wall clock must
//     be at least the given factor FASTER than the baseline. This is how
//     a perf PR proves its win against the previous baseline generation
//     (`make bench-speedup` compares against BENCH_2.json, the last
//     pre-fast-path recording); it stays out of `make check` because it
//     compares across hardware generations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pass/internal/harness"
)

type jsonResult struct {
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	Millis   int64              `json:"millis"`
	Findings map[string]float64 `json:"findings"`
}

type jsonReport struct {
	Scale   float64      `json:"scale"`
	Results []jsonResult `json:"results"`
}

func load(path string) (*jsonReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep jsonReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_3.json", "committed baseline report")
	currentPath := flag.String("current", "BENCH.json", "fresh passbench -json report")
	maxRatio := flag.Float64("max-ratio", 2.5, "fail when current millis exceed baseline*ratio+slack")
	slackMs := flag.Int64("slack-ms", 300, "absolute slack added to every runtime budget")
	minSpeedup := flag.Float64("min-speedup", 0, "when > 0, fail unless the whole suite runs at least this many times faster than the baseline")
	flag.Parse()

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if base.Scale != cur.Scale {
		fmt.Fprintf(os.Stderr, "benchcheck: scale mismatch: baseline %.2f vs current %.2f — not comparable\n",
			base.Scale, cur.Scale)
		os.Exit(1)
	}

	// Baseline integrity: a row for every registered experiment. Without
	// this, a baseline recorded from a failed or older run would quietly
	// exempt the missing experiments from the runtime gate forever.
	baseByID := make(map[string]bool, len(base.Results))
	for _, b := range base.Results {
		baseByID[b.ID] = true
	}
	var missing []string
	for _, exp := range harness.All() {
		if !baseByID[exp.ID] {
			missing = append(missing, exp.ID)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr,
			"benchcheck: baseline %s has no row for registered experiment(s) %s — the baseline is stale or was recorded from a failed run; regenerate it with `make bench` and commit the result\n",
			*baselinePath, strings.Join(missing, ", "))
		os.Exit(1)
	}

	curByID := make(map[string]jsonResult, len(cur.Results))
	for _, r := range cur.Results {
		curByID[r.ID] = r
	}

	var failures []string
	for _, b := range base.Results {
		c, ok := curByID[b.ID]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current report", b.ID))
			continue
		}
		budget := int64(float64(b.Millis)**maxRatio) + *slackMs
		status := "ok"
		if c.Millis > budget {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %dms exceeds budget %dms (baseline %dms × %.1f + %dms)",
				b.ID, c.Millis, budget, b.Millis, *maxRatio, *slackMs))
		}
		fmt.Printf("%-4s %6dms (baseline %6dms, budget %6dms) %s\n", b.ID, c.Millis, b.Millis, budget, status)
		delete(curByID, b.ID)
	}
	for id := range curByID {
		fmt.Printf("%-4s new experiment (no baseline yet)\n", id)
	}

	if *minSpeedup > 0 {
		// Sum only experiments present in both reports: a registry that
		// has since grown (or shrunk) must not skew the ratio.
		byID := make(map[string]int64, len(cur.Results))
		for _, c := range cur.Results {
			byID[c.ID] = c.Millis
		}
		var baseTotal, curTotal int64
		for _, b := range base.Results {
			if c, ok := byID[b.ID]; ok {
				baseTotal += b.Millis
				curTotal += c
			}
		}
		speedup := float64(baseTotal) / float64(max(curTotal, 1))
		fmt.Printf("\nsuite wall-clock: %dms vs baseline %dms — %.2fx speedup (want >= %.2fx)\n",
			curTotal, baseTotal, speedup, *minSpeedup)
		if speedup < *minSpeedup {
			failures = append(failures, fmt.Sprintf(
				"suite speedup %.2fx below required %.2fx (current %dms, baseline %dms)",
				speedup, *minSpeedup, curTotal, baseTotal))
		}
	}

	for _, r := range cur.Results {
		for name, v := range r.Findings {
			if !strings.HasPrefix(name, "recall_") {
				continue
			}
			if v < 0 || v > 1 {
				failures = append(failures, fmt.Sprintf("%s: %s = %v out of [0,1]", r.ID, name, v))
			}
			if strings.HasSuffix(name, "_l0") && v != 1 {
				failures = append(failures, fmt.Sprintf("%s: %s = %v, want 1 on a pristine network", r.ID, name, v))
			}
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcheck: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchcheck: %d experiments within budget, invariants hold\n", len(base.Results))
}
