package main

import (
	"bytes"
	"strings"
	"testing"
)

// The passctl command is exercised end to end through run(), which takes
// its argv and streams explicitly.

func ctl(t *testing.T, store string, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	argv := append([]string{"-store", store}, args...)
	err := run(argv, strings.NewReader(stdin), &out)
	return out.String(), err
}

const sampleCSV = `# sensor,unixnano,value[,label]
cam-1,1000000000,55.5,plate:abc
cam-1,2000000000,61.2
cam-2,1500000000,48.0
`

func TestIngestQueryRoundTrip(t *testing.T) {
	store := t.TempDir()
	out, err := ctl(t, store, sampleCSV, "ingest", "-attrs", "domain=traffic,zone=boston")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ingested 3 readings") {
		t.Fatalf("ingest output: %q", out)
	}
	out, err = ctl(t, store, "", "query", "domain=traffic AND zone=boston")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 result(s)") {
		t.Fatalf("query output: %q", out)
	}
	// Extract the ID from the query output for record/lineage commands.
	id := strings.Fields(out)[0]
	out, err = ctl(t, store, "", "record", id)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type:    raw", "zone = boston", "payload: present=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("record output missing %q:\n%s", want, out)
		}
	}
	out, err = ctl(t, store, "", "lineage", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[raw]") {
		t.Fatalf("lineage output: %q", out)
	}
	out, err = ctl(t, store, "", "descendants", id)
	if err != nil || !strings.Contains(out, "0 descendant(s)") {
		t.Fatalf("descendants output: %q, %v", out, err)
	}
}

func TestIngestDerivesWindowAttrs(t *testing.T) {
	store := t.TempDir()
	if _, err := ctl(t, store, sampleCSV, "ingest", "-attrs", "domain=traffic"); err != nil {
		t.Fatal(err)
	}
	// Overlap query between the min and max reading times must hit.
	out, err := ctl(t, store, "", "query", "OVERLAPS [1200000000, 1300000000]")
	if err != nil || !strings.Contains(out, "1 result(s)") {
		t.Fatalf("window query: %q, %v", out, err)
	}
}

func TestGCAndVerify(t *testing.T) {
	store := t.TempDir()
	if _, err := ctl(t, store, sampleCSV, "ingest", "-attrs", "zone=boston"); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, store, "", "gc", "-before", "9000000000")
	if err != nil || !strings.Contains(out, "collected 1 payload(s)") {
		t.Fatalf("gc: %q, %v", out, err)
	}
	out, err = ctl(t, store, "", "verify")
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out)
	}
	if !strings.Contains(out, "store is consistent") || !strings.Contains(out, "collected:        1") {
		t.Fatalf("verify output: %q", out)
	}
	out, err = ctl(t, store, "", "stats")
	if err != nil || !strings.Contains(out, "records:        1") {
		t.Fatalf("stats: %q, %v", out, err)
	}
}

func TestErrors(t *testing.T) {
	store := t.TempDir()
	cases := [][]string{
		{},                              // missing command
		{"bogus"},                       // unknown command
		{"query"},                       // missing expression
		{"record", "nothex"},            // bad id
		{"gc"},                          // missing -before
		{"gc", "-before", "not-a-time"}, // bad cutoff
	}
	for _, args := range cases {
		if _, err := ctl(t, store, "", args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
	// Missing -store entirely.
	var out bytes.Buffer
	if err := run([]string{"stats"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing -store accepted")
	}
	// Empty stdin ingest.
	if _, err := ctl(t, store, "", "ingest"); err == nil {
		t.Error("empty ingest accepted")
	}
	// Malformed CSV.
	if _, err := ctl(t, store, "only-two,fields", "ingest"); err == nil {
		t.Error("malformed CSV accepted")
	}
	if _, err := ctl(t, store, "s,notanumber,3", "ingest"); err == nil {
		t.Error("bad time accepted")
	}
	// Bad attrs.
	if _, err := ctl(t, store, sampleCSV, "ingest", "-attrs", "novalue"); err == nil {
		t.Error("bad attr spec accepted")
	}
}

func TestTypedAttrParsing(t *testing.T) {
	attrs, err := parseAttrs("n=42,f=2.5,b=true,s=hello,t=2005-04-05T00:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, a := range attrs {
		kinds[a.Key] = a.Value.Kind.String()
	}
	want := map[string]string{"n": "int", "f": "float", "b": "bool", "s": "string", "t": "time"}
	for k, w := range want {
		if kinds[k] != w {
			t.Errorf("attr %s parsed as %s, want %s", k, kinds[k], w)
		}
	}
}

func TestExperimentCommand(t *testing.T) {
	// experiment needs no -store: it simulates its own sites.
	var out bytes.Buffer
	err := run([]string{"experiment", "-scale", "0.05", "E14"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E14", "survivability", "passnet", "dht", "dropped-msgs"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("experiment output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExperimentCommandE17(t *testing.T) {
	// The membership experiment, by lowercase ID (the CLI normalizes):
	// randomized schedules, join handoffs, proactive rejoins — one tiny
	// run end to end through the operator entry point.
	var out bytes.Buffer
	err := run([]string{"experiment", "-scale", "0.05", "e17"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E17", "Membership", "handoff-bytes", "conv-rounds", "dht", "passnet"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("experiment output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExperimentCommandE18(t *testing.T) {
	// The overload experiment through the operator entry point: open-loop
	// load, admission shedding, latency-tail columns.
	var out bytes.Buffer
	err := run([]string{"experiment", "-scale", "0.05", "e18"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E18", "overload", "shed", "p999-ms", "central-adm", "passnet"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("experiment output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExperimentCommandUnknownID(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"experiment", "E99"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown experiment ID should fail")
	}
}

func TestExperimentCommandUsage(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"experiment"}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "E14") {
		t.Fatalf("usage error should list experiments, got %v", err)
	}
}
