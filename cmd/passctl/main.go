// Command passctl is the operator CLI for a local PASS store: ingest
// sensor readings, derive and annotate, query by provenance, walk lineage,
// garbage-collect payloads (retaining provenance, per P4), and audit
// consistency.
//
// Usage:
//
//	passctl -store DIR <command> [args]
//
// Commands:
//
//	ingest -attrs k=v,k=v < readings.csv   ingest a tuple set (CSV: sensor,unixnano,value[,label])
//	query  'domain=traffic AND zone=boston'
//	record <hex-id>                        show one provenance record
//	lineage <hex-id> [-depth N]            ancestry tree
//	descendants <hex-id>                   taint set
//	gc -before <RFC3339|unixnano>          collect old payloads
//	verify                                 consistency audit
//	stats                                  store statistics
//	experiment [-scale F] [-parallel=true] <ID...>  run paper experiments (E1–E18); no -store needed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pass/internal/core"
	"pass/internal/harness"
	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "passctl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("passctl", flag.ContinueOnError)
	storeDir := fs.String("store", "", "store directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (ingest|query|record|lineage|descendants|gc|verify|stats|experiment)")
	}
	// The experiment runner simulates its own sites and needs no store.
	if rest[0] == "experiment" {
		return cmdExperiment(rest[1:], stdout)
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}

	s, err := core.Open(*storeDir, core.Options{})
	if err != nil {
		return err
	}
	defer s.Close()

	cmd, cmdArgs := rest[0], rest[1:]
	switch cmd {
	case "ingest":
		return cmdIngest(s, cmdArgs, stdin, stdout)
	case "query":
		return cmdQuery(s, cmdArgs, stdout)
	case "record":
		return cmdRecord(s, cmdArgs, stdout)
	case "lineage":
		return cmdLineage(s, cmdArgs, stdout)
	case "descendants":
		return cmdDescendants(s, cmdArgs, stdout)
	case "gc":
		return cmdGC(s, cmdArgs, stdout)
	case "verify":
		return cmdVerify(s, stdout)
	case "stats":
		return cmdStats(s, stdout)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// parseAttrs parses k=v,k2=v2 into typed attributes (ints, floats, bools,
// RFC3339 times, else strings).
func parseAttrs(spec string) ([]provenance.Attribute, error) {
	if spec == "" {
		return nil, nil
	}
	var out []provenance.Attribute
	for _, pair := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad attribute %q (want key=value)", pair)
		}
		out = append(out, provenance.Attr(k, typedValue(v)))
	}
	return out, nil
}

func typedValue(v string) provenance.Value {
	if i, err := strconv.ParseInt(v, 10, 64); err == nil {
		return provenance.Int64(i)
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return provenance.Float(f)
	}
	if v == "true" || v == "false" {
		return provenance.Bool(v == "true")
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return provenance.TimeVal(t)
	}
	return provenance.String(v)
}

func cmdIngest(s *core.Store, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	attrSpec := fs.String("attrs", "", "comma-separated key=value provenance attributes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	attrs, err := parseAttrs(*attrSpec)
	if err != nil {
		return err
	}
	ts := &tuple.Set{}
	scanner := bufio.NewScanner(stdin)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 3 {
			return fmt.Errorf("line %d: want sensor,unixnano,value[,label]", line)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad time: %w", line, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value: %w", line, err)
		}
		r := tuple.Reading{SensorID: strings.TrimSpace(parts[0]), Time: t, Value: v}
		if len(parts) > 3 {
			r.Label = strings.TrimSpace(parts[3])
		}
		ts.Append(r)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if ts.Len() == 0 {
		return fmt.Errorf("no readings on stdin")
	}
	// Derive window attributes when absent.
	if _, hasStart := findAttr(attrs, provenance.KeyStart); !hasStart {
		if min, max, ok := ts.TimeRange(); ok {
			attrs = append(attrs,
				provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, min))),
				provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, max))))
		}
	}
	id, err := s.IngestTupleSet(ts, attrs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ingested %d readings as %s\n", ts.Len(), id)
	return nil
}

func findAttr(attrs []provenance.Attribute, key string) (provenance.Value, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return provenance.Value{}, false
}

func cmdQuery(s *core.Store, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: query '<expression>'")
	}
	ids, err := s.QueryString(args[0])
	if err != nil {
		return err
	}
	for _, id := range ids {
		rec, err := s.GetRecord(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s  %-10s %s\n", id, rec.Type, summarizeAttrs(rec))
	}
	fmt.Fprintf(stdout, "%d result(s)\n", len(ids))
	return nil
}

func summarizeAttrs(rec *provenance.Record) string {
	var parts []string
	for i, a := range rec.Attributes {
		if i >= 4 {
			parts = append(parts, "…")
			break
		}
		parts = append(parts, a.Key+"="+a.Value.AsString())
	}
	return strings.Join(parts, " ")
}

func cmdRecord(s *core.Store, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: record <hex-id>")
	}
	id, err := provenance.ParseID(args[0])
	if err != nil {
		return err
	}
	rec, err := s.GetRecord(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "id:      %s\n", id)
	fmt.Fprintf(stdout, "type:    %s\n", rec.Type)
	if rec.Tool != "" {
		fmt.Fprintf(stdout, "tool:    %s %s\n", rec.Tool, rec.ToolVersion)
	}
	fmt.Fprintf(stdout, "created: %s\n", time.Unix(0, rec.Created).UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(stdout, "data:    %x (%d bytes)\n", rec.DataDigest[:8], rec.DataSize)
	present, err := s.DataPresent(id)
	if err == nil && rec.Type != provenance.Annotation {
		fmt.Fprintf(stdout, "payload: present=%v\n", present)
	}
	for _, a := range rec.Attributes {
		fmt.Fprintf(stdout, "attr:    %s = %s (%s)\n", a.Key, a.Value.AsString(), a.Value.Kind)
	}
	for _, p := range rec.Parents {
		fmt.Fprintf(stdout, "parent:  %s\n", p)
	}
	return nil
}

func cmdLineage(s *core.Store, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lineage", flag.ContinueOnError)
	depth := fs.Int("depth", 16, "maximum tree depth")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lineage <hex-id> [-depth N]")
	}
	id, err := provenance.ParseID(fs.Arg(0))
	if err != nil {
		return err
	}
	tree, err := s.LineageTree(id, *depth)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, tree)
	return nil
}

func cmdDescendants(s *core.Store, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: descendants <hex-id>")
	}
	id, err := provenance.ParseID(args[0])
	if err != nil {
		return err
	}
	desc, err := s.Descendants(id, index.NoLimit)
	if err != nil {
		return err
	}
	for _, d := range desc {
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintf(stdout, "%d descendant(s)\n", len(desc))
	return nil
}

func cmdGC(s *core.Store, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gc", flag.ContinueOnError)
	before := fs.String("before", "", "cutoff (RFC3339 or unix nanoseconds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *before == "" {
		return fmt.Errorf("gc requires -before")
	}
	var cutoff int64
	if i, err := strconv.ParseInt(*before, 10, 64); err == nil {
		cutoff = i
	} else if t, err := time.Parse(time.RFC3339, *before); err == nil {
		cutoff = t.UnixNano()
	} else {
		return fmt.Errorf("bad -before %q", *before)
	}
	n, err := s.RemoveDataBefore(cutoff)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "collected %d payload(s); provenance retained\n", n)
	return nil
}

func cmdVerify(s *core.Store, stdout io.Writer) error {
	rep, err := s.VerifyConsistency()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "records:          %d\n", rep.Records)
	fmt.Fprintf(stdout, "live payloads:    %d\n", rep.DataBlobs)
	fmt.Fprintf(stdout, "collected:        %d\n", rep.Collected)
	fmt.Fprintf(stdout, "dangling parents: %d\n", rep.DanglingParents)
	fmt.Fprintf(stdout, "missing data:     %d\n", rep.MissingData)
	fmt.Fprintf(stdout, "broken index:     %d\n", rep.BrokenIndex)
	fmt.Fprintf(stdout, "id mismatches:    %d\n", rep.IDMismatches)
	if !rep.Clean() {
		return fmt.Errorf("store is INCONSISTENT")
	}
	fmt.Fprintln(stdout, "store is consistent")
	return nil
}

// cmdExperiment runs one or more harness experiments — the operator's
// window into the Section IV architecture comparison, from the E14
// survivability sweep through the E17 randomized membership schedules —
// without needing a local store.
func cmdExperiment(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.25, "workload scale factor (1.0 = full configuration)")
	parallel := fs.Bool("parallel", true, "run sweep cells on all cores (tables are identical either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		var ids []string
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
		return fmt.Errorf("usage: experiment [-scale F] [-parallel=true] <ID...>; available: %s", strings.Join(ids, " "))
	}
	runner := harness.NewRunner(harness.Scale(*scale)).SetParallel(*parallel)
	for _, raw := range fs.Args() {
		exp, ok := harness.Lookup(strings.ToUpper(strings.TrimSpace(raw)))
		if !ok {
			return fmt.Errorf("unknown experiment %q", raw)
		}
		res, err := exp.Run(runner)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Fprintln(stdout, res.String())
	}
	return nil
}

func cmdStats(s *core.Store, stdout io.Writer) error {
	st, err := s.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "records:        %d\n", st.Records)
	fmt.Fprintf(stdout, "lsm tables:     %d (%d entries)\n", st.KV.Tables, st.KV.TableEntries)
	fmt.Fprintf(stdout, "memtable keys:  %d (%d bytes)\n", st.KV.MemtableKeys, st.KV.MemtableBytes)
	fmt.Fprintf(stdout, "wal bytes:      %d\n", st.KV.WALSize)
	fmt.Fprintf(stdout, "flushes:        %d\n", st.KV.Flushes)
	fmt.Fprintf(stdout, "compactions:    %d\n", st.KV.Compactions)
	return nil
}
