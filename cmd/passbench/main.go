// Command passbench runs the reproduction's experiment suite (E1–E13) and
// prints the result tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	passbench [-run E5,E7] [-scale 1.0]
//
// Each experiment maps to one claim of the paper (see DESIGN.md §4). The
// default scale (1.0) is the EXPERIMENTS.md configuration; smaller scales
// run proportionally smaller workloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pass/internal/harness"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	flag.Parse()

	runner := harness.NewRunner(harness.Scale(*scale))

	var selected []harness.Experiment
	if *runList == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			exp, ok := harness.Lookup(strings.ToUpper(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "passbench: unknown experiment %q\n", id)
				fmt.Fprintf(os.Stderr, "available:")
				for _, e := range harness.All() {
					fmt.Fprintf(os.Stderr, " %s", e.ID)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			selected = append(selected, exp)
		}
	}

	fmt.Printf("PASS reproduction experiment suite (scale %.2f)\n", *scale)
	fmt.Printf("paper: Provenance-Aware Sensor Data Storage, NetDB/ICDE 2005\n\n")

	failed := false
	for _, exp := range selected {
		start := time.Now()
		res, err := exp.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", exp.ID, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
