// Command passbench runs the reproduction's experiment suite (E1–E18) and
// prints the result tables.
//
// Usage:
//
//	passbench [-run E5,E7] [-scale 1.0] [-parallel=true] [-json results.json]
//
// Each experiment maps to one claim of the paper (see the README experiment
// map). The default scale (1.0) is the full configuration; smaller scales
// run proportionally smaller workloads. -json additionally writes every
// experiment's scalar findings to a machine-readable file, which CI
// commits as BENCH_<n>.json so successive PRs leave a perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pass/internal/harness"
)

// jsonResult is the machine-readable form of one experiment's outcome.
// Millis and PeakGoroutines come from harness.Instrument: wall-clock for
// the perf gate, sampled peak goroutines as an ops observation (the
// parallel cell runner should bound fan-out near GOMAXPROCS).
type jsonResult struct {
	ID             string             `json:"id"`
	Title          string             `json:"title"`
	Millis         int64              `json:"millis"`
	PeakGoroutines int                `json:"peak_goroutines"`
	Findings       map[string]float64 `json:"findings"`
}

// jsonReport is the envelope written by -json.
type jsonReport struct {
	Scale       float64      `json:"scale"`
	TotalMillis int64        `json:"total_millis"`
	Results     []jsonResult `json:"results"`
}

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	parallel := flag.Bool("parallel", true, "run sweep cells on all cores (tables are identical either way)")
	jsonPath := flag.String("json", "", "also write findings as JSON to this file")
	flag.Parse()

	runner := harness.NewRunner(harness.Scale(*scale)).SetParallel(*parallel)

	var selected []harness.Experiment
	if *runList == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			exp, ok := harness.Lookup(strings.ToUpper(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "passbench: unknown experiment %q\n", id)
				fmt.Fprintf(os.Stderr, "available:")
				for _, e := range harness.All() {
					fmt.Fprintf(os.Stderr, " %s", e.ID)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			selected = append(selected, exp)
		}
	}

	fmt.Printf("PASS reproduction experiment suite (scale %.2f)\n", *scale)
	fmt.Printf("paper: Provenance-Aware Sensor Data Storage, NetDB/ICDE 2005\n\n")

	report := jsonReport{Scale: *scale}
	failed := false
	for _, exp := range selected {
		var res *harness.Result
		wallMs, peak, err := harness.Instrument(func() error {
			var runErr error
			res, runErr = exp.Run(runner)
			return runErr
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", exp.ID, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %dms, peak %d goroutines)\n\n", exp.ID, wallMs, peak)
		report.TotalMillis += wallMs
		report.Results = append(report.Results, jsonResult{
			ID:             res.ID,
			Title:          res.Title,
			Millis:         wallMs,
			PeakGoroutines: peak,
			Findings:       res.Findings,
		})
	}
	if failed {
		// Never write a partial findings file: a baseline missing failed
		// experiments' rows would read as trustworthy data downstream.
		if *jsonPath != "" {
			fmt.Fprintf(os.Stderr, "passbench: not writing %s: some experiments failed\n", *jsonPath)
		}
		os.Exit(1)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "passbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "passbench:", err)
			os.Exit(1)
		}
		fmt.Printf("findings written to %s\n", *jsonPath)
	}
}
