package main

import (
	"encoding/json"
	"net"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pass/internal/node"
	"pass/internal/provenance"
	"pass/internal/trace"
)

// syncBuf is a goroutine-safe strings.Builder: the daemon goroutine
// writes while the test polls.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonGracefulSignalRoundTrip is the signal-and-scrape round
// trip: boot the daemon on a soak long enough to outlive the test,
// scrape /metrics while it runs, deliver a real SIGTERM, and require a
// clean exit with the trace sink flushed to parseable JSONL — not a
// death mid-write.
func TestDaemonGracefulSignalRoundTrip(t *testing.T) {
	tracePath := t.TempDir() + "/sigterm-trace.jsonl"
	addrCh := make(chan string, 1)
	exitCh := make(chan int, 1)
	var out syncBuf

	go func() {
		exitCh <- run([]string{
			"daemon",
			"-addr", "127.0.0.1:0",
			"-models", "passnet-eff",
			"-sites", "16", "-rounds", "12", "-pubs", "3",
			"-interval", "25ms",
			"-duration", "2m", // would run forever; the signal ends it
			"-trace", tracePath,
		}, &out, func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never came up\n%s", out.String())
	}

	// Scrape while live, and give the soak time to write trace lines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("metrics never showed live series")
		}
		if strings.Contains(httpGet(t, "http://"+addr+"/metrics"),
			`pass_recall{model="passnet-eff"}`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Real signal, own process: NotifyContext intercepts it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("daemon exited %d after SIGTERM\n%s", code, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never shut down after SIGTERM\n%s", out.String())
	}
	if !strings.Contains(out.String(), "trace sink flushed") {
		t.Fatalf("no flush confirmation in output:\n%s", out.String())
	}

	// The flushed file must be complete JSONL — every line parses; a
	// mid-write kill would leave a torn final line.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace file empty after graceful shutdown")
	}
	for _, line := range lines {
		var e trace.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("torn trace line %q: %v", line, err)
		}
	}
}

var nodeBootLine = regexp.MustCompile(`passd: node (\d+) listening on (\S+) http (\S+)`)

func resolveUDP(t *testing.T, addr string) *net.UDPAddr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestNodeModeServesVerbsAndShutsDownOnSignal boots `passd node`
// in-process, drives a put/query through its UDP verbs, scrapes its
// /metrics surface, then sends SIGTERM and requires a clean exit.
func TestNodeModeServesVerbsAndShutsDownOnSignal(t *testing.T) {
	exitCh := make(chan int, 1)
	var out syncBuf
	go func() {
		exitCh <- run([]string{
			"node", "-id", "7", "-mode", "passnet",
			"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		}, &out, nil)
	}()

	var udpAddr, httpAddr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := nodeBootLine.FindStringSubmatch(out.String()); m != nil {
			udpAddr, httpAddr = m[2], m[3]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never printed its boot line\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	c, err := node.NewClient(1000)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := resolveUDP(t, udpAddr)
	if err := c.SetPeers(addr, []node.Peer{{ID: 7, Addr: udpAddr}}); err != nil {
		t.Fatalf("roster: %v", err)
	}
	rec, _, err := provenance.NewRaw([32]byte{1}, 64).
		Attrs(provenance.Attr(provenance.KeyDomain, provenance.String("sig"))).
		CreatedAt(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Put(addr, rec)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := c.QueryAttr(addr, provenance.KeyDomain, provenance.String("sig"))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(got) != 1 || got[0] != id {
		t.Fatalf("query returned %v, want [%x]", got, id[:4])
	}

	expo := httpGet(t, "http://"+httpAddr+"/metrics")
	if !strings.Contains(expo, "pass_node_msgs_in") || !strings.Contains(expo, "pass_node_records 1") {
		t.Fatalf("node metrics missing series:\n%s", expo)
	}
	health := httpGet(t, "http://"+httpAddr+"/healthz")
	if !strings.Contains(health, `"healthy":true`) {
		t.Fatalf("healthz: %s", health)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("node exited %d after SIGTERM\n%s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("node never shut down\n%s", out.String())
	}
	if !strings.Contains(out.String(), "node 7 shut down") {
		t.Fatalf("no shutdown confirmation:\n%s", out.String())
	}
}
