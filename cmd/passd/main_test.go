package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pass/internal/trace"
)

// TestDaemonServesMetricsDuringSoak boots the daemon on an ephemeral
// port with two models and a fast clock, scrapes /metrics and /healthz
// WHILE the fault stream runs, and checks the exit code, the summary,
// and the JSONL trace file.
func TestDaemonServesMetricsDuringSoak(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "soak-trace.jsonl")
	addrCh := make(chan string, 1)
	exitCh := make(chan int, 1)
	var out strings.Builder

	go func() {
		exitCh <- run([]string{
			"daemon",
			"-addr", "127.0.0.1:0",
			"-models", "passnet-eff,dht",
			"-sites", "16", "-rounds", "12", "-pubs", "3",
			"-interval", "20ms",
			"-trace", tracePath,
		}, &out, func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never came up\n%s", out.String())
	}

	// Scrape while the soak is live: with 12 rounds at 20ms pacing the
	// stream is still running on the first scrapes.
	deadline := time.Now().Add(10 * time.Second)
	var expo string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed live series\n%s", expo)
		}
		expo = httpGet(t, "http://"+addr+"/metrics")
		if strings.Contains(expo, `pass_recall{model="passnet-eff"}`) &&
			strings.Contains(expo, `pass_sites_up{model="dht"}`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, series := range []string{
		"# TYPE pass_net_bytes_total counter",
		`pass_gossip_bytes_total{model="passnet-eff"}`,
		`pass_outbox_depth{model="passnet-eff"}`,
		`pass_members{model="dht"}`,
		`pass_recall_probe_count{model="dht"}`,
	} {
		if !strings.Contains(expo, series) {
			t.Errorf("live exposition missing %q", series)
		}
	}

	var health struct {
		Healthy bool `json:"healthy"`
		Soaks   []struct {
			Model  string `json:"model"`
			GateOK bool   `json:"gate_ok"`
		} `json:"soaks"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+addr+"/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Healthy || len(health.Soaks) != 2 {
		t.Fatalf("healthz: %+v", health)
	}

	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("daemon exited %d\n%s", code, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never finished\n%s", out.String())
	}
	if !strings.Contains(out.String(), "gate OK") {
		t.Fatalf("no gate verdict in summary:\n%s", out.String())
	}

	// The write-through trace file is non-empty, line-parseable JSONL.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 24 {
		t.Fatalf("trace file has only %d lines", len(lines))
	}
	models := map[string]bool{}
	for _, line := range lines {
		var e trace.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("corrupt trace line %q: %v", line, err)
		}
		models[e.Model] = true
	}
	if !models["passnet-eff"] || !models["dht"] {
		t.Fatalf("trace lines missing a model: %v", models)
	}
}

func TestDaemonUsageAndBadModel(t *testing.T) {
	var out strings.Builder
	if code := run(nil, &out, nil); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"daemon", "-models", "bogus"}, &out, nil); code != 1 {
		t.Fatalf("bad model exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "bogus") {
		t.Fatalf("bad-model error not surfaced: %s", out.String())
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s\n%s", url, resp.Status, b)
	}
	return string(b)
}
