// Command passd is the PASS ops daemon: it drives architecture models
// through seeded chaos-soak fault streams (package obs over package
// schedule) while serving the live metrics surface over HTTP — Prometheus
// text-format exposition on /metrics and a JSON soak/gate summary on
// /healthz — and optionally streaming the JSONL round trace to a file.
//
// Usage:
//
//	passd daemon [flags]
//
// Flags:
//
//	-addr       listen address (default 127.0.0.1:9464; port 0 picks one)
//	-models     comma-separated roster models to soak concurrently
//	            (default passnet-eff; roster: central, softstate, dht,
//	            passnet, passnet-eff)
//	-seed       base schedule seed (iteration i of each model uses seed+i)
//	-sites      topology size per model (default 16)
//	-rounds     simulated rounds per soak iteration (default 24)
//	-interval   wall-clock pacing per simulated round (default 250ms)
//	-duration   total soak budget; 0 runs exactly one iteration per model
//	-threshold  recall bar of the windowed gate (default 0.95)
//	-window     max consecutive below-threshold rounds (default downtime+3)
//	-trace      JSONL trace sink file ("" = in-memory ring only)
//
// The process exits 0 when every model's windowed soak gate held
// ("recall never below the threshold for more than K consecutive
// rounds") and 1 on a breach or model error — so a CI smoke job can
// assert the gate by exit code while scraping /metrics live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pass/internal/metrics"
	"pass/internal/obs"
	"pass/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, nil))
}

// run is the testable entry point: ready (may be nil) receives the bound
// listen address once the HTTP surface is up. Returns the process exit
// code.
func run(args []string, stdout io.Writer, ready func(addr string)) int {
	if len(args) == 0 || args[0] != "daemon" {
		fmt.Fprintln(stdout, "usage: passd daemon [flags]   (see -h for flags)")
		return 2
	}
	fs := flag.NewFlagSet("passd daemon", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9464", "HTTP listen address for /metrics and /healthz")
	models := fs.String("models", "passnet-eff", "comma-separated roster models to soak")
	seed := fs.Uint64("seed", 1, "base schedule seed")
	sites := fs.Int("sites", 16, "sites per model topology")
	rounds := fs.Int("rounds", 24, "rounds per soak iteration")
	pubs := fs.Int("pubs", 4, "publishes per round")
	interval := fs.Duration("interval", 250*time.Millisecond, "wall-clock pacing per simulated round")
	duration := fs.Duration("duration", 0, "total soak budget (0 = one iteration per model)")
	threshold := fs.Float64("threshold", 0.95, "windowed gate recall threshold")
	window := fs.Int("window", 0, "max consecutive below-threshold rounds (0 = downtime+3)")
	tracePath := fs.String("trace", "", "JSONL round-trace sink file")
	traceCap := fs.Int("trace-cap", trace.DefaultCap, "in-memory trace ring capacity (lines)")
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}

	reg := metrics.NewRegistry()
	tr := trace.New(*traceCap)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stdout, "passd:", err)
			return 1
		}
		defer f.Close()
		tr.SetSink(f)
	}

	var soaks []*obs.Soak
	for _, name := range strings.Split(*models, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := obs.NewSoak(obs.SoakConfig{
			Model: name, Seed: *seed, Sites: *sites,
			Rounds: *rounds, PubsPerRound: *pubs,
			Threshold: *threshold, MaxStreak: *window,
			Interval: *interval, Duration: *duration,
		}, reg, tr)
		if err != nil {
			fmt.Fprintln(stdout, "passd:", err)
			return 1
		}
		soaks = append(soaks, s)
	}
	if len(soaks) == 0 {
		fmt.Fprintln(stdout, "passd: no models to soak")
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stdout, "passd:", err)
		return 1
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		statuses := make([]obs.SoakStatus, len(soaks))
		healthy := true
		for i, s := range soaks {
			statuses[i] = s.Status()
			if !statuses[i].GateOK {
				healthy = false
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"healthy": healthy,
			"soaks":   statuses,
			"trace": map[string]any{
				"buffered": tr.Len(),
				"dropped":  tr.Dropped(),
			},
		})
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stdout, "passd: serving /metrics and /healthz on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for _, s := range soaks {
		wg.Add(1)
		go func(s *obs.Soak) {
			defer wg.Done()
			s.Run(ctx)
		}(s)
	}
	wg.Wait()

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)

	exit := 0
	for _, s := range soaks {
		st := s.Status()
		verdict := "gate OK"
		if !st.GateOK {
			verdict = "GATE BREACHED"
			exit = 1
		}
		fmt.Fprintf(stdout, "passd: %-12s %s — iterations=%d rounds=%d min_recall=%.3f worst_streak=%d breaches=%d\n",
			st.Model, verdict, st.Iterations, st.Rounds, st.MinRecall, st.WorstStreak, st.Breaches)
		if st.Err != "" {
			fmt.Fprintf(stdout, "passd: %-12s error: %s\n", st.Model, st.Err)
			exit = 1
		}
	}
	if err := tr.SinkErr(); err != nil {
		fmt.Fprintln(stdout, "passd: trace sink:", err)
		exit = 1
	}
	return exit
}
