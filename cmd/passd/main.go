// Command passd is the PASS daemon, in two modes.
//
// `passd daemon` drives architecture models through seeded chaos-soak
// fault streams (package obs over package schedule) while serving the
// live metrics surface over HTTP — Prometheus text-format exposition on
// /metrics and a JSON soak/gate summary on /healthz — and optionally
// streaming the JSONL round trace to a file.
//
// `passd node` runs one REAL node (package node): a UDP wire endpoint
// serving put/get/query verbs plus the control plane the multi-process
// cluster harness drives (peer roster, ticks, drop rules, stats), with
// the same /metrics and /healthz HTTP surface. The node prints its
// bound addresses on stdout ("passd: node N listening on ADDR http
// ADDR") so a parent process can collect ephemeral ports.
//
// Usage:
//
//	passd daemon [flags]
//	passd node [flags]
//
// Daemon flags:
//
//	-addr       listen address (default 127.0.0.1:9464; port 0 picks one)
//	-models     comma-separated roster models to soak concurrently
//	            (default passnet-eff; roster: central, softstate, dht,
//	            passnet, passnet-eff)
//	-seed       base schedule seed (iteration i of each model uses seed+i)
//	-sites      topology size per model (default 16)
//	-rounds     simulated rounds per soak iteration (default 24)
//	-interval   wall-clock pacing per simulated round (default 250ms)
//	-duration   total soak budget; 0 runs exactly one iteration per model
//	-threshold  recall bar of the windowed gate (default 0.95)
//	-window     max consecutive below-threshold rounds (default downtime+3)
//	-trace      JSONL trace sink file ("" = in-memory ring only)
//
// Node flags:
//
//	-id      node ID (dense from 0; doubles as wire From and ring seat)
//	-mode    "passnet" or "dht" (default passnet)
//	-listen  UDP listen address (default 127.0.0.1:0)
//	-http    HTTP listen address for /metrics + /healthz ("" disables)
//	-seed    seed for seeded node behaviours
//	-data    data directory for WAL + snapshot durability ("" = in-memory
//	         only); a restarted node recovers its state from here
//	-fsync   fsync the WAL on every append (machine-crash durability)
//	-compact-every  WAL records between snapshot compactions (0 = default)
//
// Both modes shut down gracefully on SIGTERM/SIGINT: the daemon drains
// its soaks and flushes the -trace sink before exiting; the node closes
// its sockets. The daemon exits 0 when every model's windowed soak gate
// held ("recall never below the threshold for more than K consecutive
// rounds") and 1 on a breach, model error, or trace-sink failure — so a
// CI smoke job can assert the gate by exit code while scraping /metrics
// live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pass/internal/metrics"
	"pass/internal/node"
	"pass/internal/obs"
	"pass/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, nil))
}

// run is the testable entry point: ready (may be nil) receives the bound
// HTTP listen address once the serving surface is up. Returns the
// process exit code.
func run(args []string, stdout io.Writer, ready func(addr string)) int {
	if len(args) == 0 {
		fmt.Fprintln(stdout, "usage: passd daemon|node [flags]   (see -h for flags)")
		return 2
	}
	switch args[0] {
	case "daemon":
		return runDaemon(args[1:], stdout, ready)
	case "node":
		return runNode(args[1:], stdout, ready)
	default:
		fmt.Fprintln(stdout, "usage: passd daemon|node [flags]   (see -h for flags)")
		return 2
	}
}

func runDaemon(args []string, stdout io.Writer, ready func(addr string)) int {
	fs := flag.NewFlagSet("passd daemon", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9464", "HTTP listen address for /metrics and /healthz")
	models := fs.String("models", "passnet-eff", "comma-separated roster models to soak")
	seed := fs.Uint64("seed", 1, "base schedule seed")
	sites := fs.Int("sites", 16, "sites per model topology")
	rounds := fs.Int("rounds", 24, "rounds per soak iteration")
	pubs := fs.Int("pubs", 4, "publishes per round")
	interval := fs.Duration("interval", 250*time.Millisecond, "wall-clock pacing per simulated round")
	duration := fs.Duration("duration", 0, "total soak budget (0 = one iteration per model)")
	threshold := fs.Float64("threshold", 0.95, "windowed gate recall threshold")
	window := fs.Int("window", 0, "max consecutive below-threshold rounds (0 = downtime+3)")
	tracePath := fs.String("trace", "", "JSONL round-trace sink file")
	traceCap := fs.Int("trace-cap", trace.DefaultCap, "in-memory trace ring capacity (lines)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := metrics.NewRegistry()
	tr := trace.New(*traceCap)
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stdout, "passd:", err)
			return 1
		}
		defer f.Close()
		traceFile = f
		tr.SetSink(f)
	}

	var soaks []*obs.Soak
	for _, name := range strings.Split(*models, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := obs.NewSoak(obs.SoakConfig{
			Model: name, Seed: *seed, Sites: *sites,
			Rounds: *rounds, PubsPerRound: *pubs,
			Threshold: *threshold, MaxStreak: *window,
			Interval: *interval, Duration: *duration,
		}, reg, tr)
		if err != nil {
			fmt.Fprintln(stdout, "passd:", err)
			return 1
		}
		soaks = append(soaks, s)
	}
	if len(soaks) == 0 {
		fmt.Fprintln(stdout, "passd: no models to soak")
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stdout, "passd:", err)
		return 1
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		statuses := make([]obs.SoakStatus, len(soaks))
		healthy := true
		for i, s := range soaks {
			statuses[i] = s.Status()
			if !statuses[i].GateOK {
				healthy = false
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"healthy": healthy,
			"soaks":   statuses,
			"trace": map[string]any{
				"buffered": tr.Len(),
				"dropped":  tr.Dropped(),
			},
		})
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stdout, "passd: serving /metrics and /healthz on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for _, s := range soaks {
		wg.Add(1)
		go func(s *obs.Soak) {
			defer wg.Done()
			s.Run(ctx)
		}(s)
	}
	wg.Wait()

	// Graceful shutdown: soaks have drained (a SIGTERM/SIGINT cancels
	// ctx and each Run returns at its next round boundary, never
	// mid-write); now flush the trace sink to disk before the summary,
	// so a signalled daemon leaves a complete JSONL file behind.
	if traceFile != nil {
		if err := traceFile.Sync(); err != nil {
			fmt.Fprintln(stdout, "passd: trace sync:", err)
		} else {
			fmt.Fprintln(stdout, "passd: trace sink flushed")
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)

	exit := 0
	for _, s := range soaks {
		st := s.Status()
		verdict := "gate OK"
		if !st.GateOK {
			verdict = "GATE BREACHED"
			exit = 1
		}
		fmt.Fprintf(stdout, "passd: %-12s %s — iterations=%d rounds=%d min_recall=%.3f worst_streak=%d breaches=%d\n",
			st.Model, verdict, st.Iterations, st.Rounds, st.MinRecall, st.WorstStreak, st.Breaches)
		if st.Err != "" {
			fmt.Fprintf(stdout, "passd: %-12s error: %s\n", st.Model, st.Err)
			exit = 1
		}
	}
	if err := tr.SinkErr(); err != nil {
		fmt.Fprintln(stdout, "passd: trace sink:", err)
		exit = 1
	}
	return exit
}

// runNode boots one real node and serves it until SIGTERM/SIGINT. The
// stdout line carrying the bound UDP and HTTP addresses is the boot
// protocol: the cluster harness scans for it to collect ephemeral ports
// before distributing the peer roster via TPeers.
func runNode(args []string, stdout io.Writer, ready func(addr string)) int {
	fs := flag.NewFlagSet("passd node", flag.ContinueOnError)
	id := fs.Int("id", 0, "node ID (dense from 0)")
	mode := fs.String("mode", "passnet", `node mode: "passnet" or "dht"`)
	listen := fs.String("listen", "127.0.0.1:0", "UDP listen address")
	httpAddr := fs.String("http", "127.0.0.1:0", "HTTP listen address for /metrics and /healthz (\"\" disables)")
	seed := fs.Uint64("seed", 1, "seed for seeded node behaviours")
	dataDir := fs.String("data", "", "data directory for WAL + snapshot durability (\"\" = in-memory only)")
	fsync := fs.Bool("fsync", false, "fsync the WAL on every append (machine-crash durability)")
	compactEvery := fs.Int64("compact-every", 0, "WAL records between snapshot compactions (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	nd, err := node.New(node.Config{
		ID: int32(*id), Mode: *mode, Listen: *listen, Seed: *seed,
		DataDir: *dataDir, Fsync: *fsync, CompactEvery: *compactEvery,
	})
	if err != nil {
		fmt.Fprintln(stdout, "passd:", err)
		return 1
	}
	defer nd.Close()

	httpShown := "-"
	var srv *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(stdout, "passd:", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			nd.SyncMetrics()
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = nd.Registry().WritePrometheus(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"healthy": true, "id": *id, "mode": *mode,
				"udp": nd.Addr().String(), "recovered": nd.Recovered(),
			})
		})
		srv = &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		httpShown = ln.Addr().String()
	}
	fmt.Fprintf(stdout, "passd: node %d listening on %s http %s\n", *id, nd.Addr(), httpShown)
	if ready != nil {
		ready(nd.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}
	fmt.Fprintf(stdout, "passd: node %d shut down\n", *id)
	return 0
}
