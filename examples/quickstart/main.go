// Quickstart: the smallest useful tour of a local PASS store.
//
// It ingests one tuple set of camera readings, derives a filtered set
// from it, annotates the raw data with a sensor-upgrade note, then shows
// the three query shapes the paper cares about: attribute search,
// time-window overlap, and transitive lineage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pass/internal/core"
	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

func main() {
	dir, err := os.MkdirTemp("", "pass-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := core.Open(dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// 1. Ingest a tuple set: one hour of speed readings from two cameras.
	start := time.Date(2005, 4, 5, 9, 0, 0, 0, time.UTC)
	readings := &tuple.Set{}
	for i := 0; i < 20; i++ {
		readings.Append(tuple.Reading{
			SensorID: fmt.Sprintf("cam-%d", i%2),
			Time:     start.Add(time.Duration(i) * 3 * time.Minute).UnixNano(),
			Value:    40 + float64(i%7)*5, // km/h
		})
	}
	rawID, err := store.IngestTupleSet(readings,
		provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
		provenance.Attr(provenance.KeyZone, provenance.String("london")),
		provenance.Attr(provenance.KeySensorClass, provenance.String("camera")),
		provenance.Attr(provenance.KeyStart, provenance.TimeVal(start)),
		provenance.Attr(provenance.KeyEnd, provenance.TimeVal(start.Add(time.Hour))),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ingested raw tuple set:", rawID.Short())

	// 2. Derive: keep only speeders (>= 60 km/h). The derivation's
	// provenance names its input and the tool that produced it.
	speeders := &tuple.Set{}
	for _, r := range readings.Readings {
		if r.Value >= 60 {
			speeders.Append(r)
		}
	}
	fastID, err := store.Derive([]provenance.ID{rawID}, "speed-filter", "1.2", speeders,
		provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
		provenance.Attr("threshold-kmh", provenance.Int64(60)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived speeder set:   ", fastID.Short(), "-", speeders.Len(), "readings")

	// 3. Annotate the raw data: camera 1 was replaced mid-window — the
	// kind of note the paper says filenames cannot carry.
	noteID, err := store.Annotate([]provenance.ID{rawID},
		provenance.Attr(provenance.KeyNote, provenance.String("cam-1 replaced with model B")),
		provenance.Attr(provenance.KeyUpgrade, provenance.Bool(true)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotation:            ", noteID.Short())

	// 4. Query by attribute (the provenance IS the name).
	ids, err := store.QueryString(`domain=traffic AND zone=london`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nattribute query 'domain=traffic AND zone=london':", len(ids), "record(s)")

	// 5. Query by time overlap.
	ids, err = store.QueryString(fmt.Sprintf("OVERLAPS [%d, %d]",
		start.Add(30*time.Minute).UnixNano(), start.Add(40*time.Minute).UnixNano()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("time-overlap query:", len(ids), "record(s)")

	// 6. Lineage: where did the speeder set come from?
	tree, err := store.LineageTree(fastID, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of the speeder set:")
	fmt.Print(tree)

	// 7. Forward closure: what was touched by the raw data? (taint)
	desc, err := store.Descendants(rawID, index.NoLimit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("descendants of the raw set:", len(desc), "(filter output + annotation)")

	// 8. The audit that backs the Reliability criterion.
	rep, err := store.VerifyConsistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistency audit: records=%d clean=%v\n", rep.Records, rep.Clean())
}
