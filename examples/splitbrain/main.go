// Split-brain: what a wide-area partition actually looks like from each
// side of it.
//
// A 24-site distributed PASS deployment splits cleanly in half. Both
// halves keep ingesting sensor metadata — publishes are local in the
// paper's design — and both keep gossiping digests, but deltas bound for
// the far side queue in the sender's outbox. Because every site holds its
// OWN siteview.View, the divergence is observable: the same attribute
// query asked from the two sides returns two different, both locally
// correct, answers, and the per-site view fingerprints disagree. When the
// partition heals, the queued deltas drain on the next gossip rounds and
// every fingerprint converges again.
//
//	go run ./examples/splitbrain
package main

import (
	"fmt"
	"log"

	"pass/internal/arch"
	"pass/internal/arch/passnet"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

const (
	zones        = 6
	sitesPerZone = 4
	perSide      = 20
)

func pubAt(n int, net *netsim.Network, origin netsim.SiteID) arch.Pub {
	s, err := net.Site(origin)
	if err != nil {
		log.Fatal(err)
	}
	var digest [32]byte
	digest[0], digest[1] = byte(n), byte(n>>8)
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(n))),
			provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
		).
		CreatedAt(int64(n) + 1).Build()
	if err != nil {
		log.Fatal(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

func answer(m *passnet.Model, q netsim.SiteID) int {
	got, _, err := m.QueryAttr(q, provenance.KeyDomain, provenance.String("traffic"))
	if err != nil {
		log.Fatal(err)
	}
	return len(got)
}

func fingerprints(m *passnet.Model, sites []netsim.SiteID) map[uint64]int {
	out := make(map[uint64]int)
	for _, s := range sites {
		out[m.SiteView(s).Fingerprint()]++
	}
	return out
}

func main() {
	net, sites := netsim.RandomTopology(netsim.Config{}, zones, sitesPerZone, 1905)
	m := passnet.New(net, sites, passnet.Options{})
	left, right := sites[:len(sites)/2], sites[len(sites)/2:]

	fmt.Printf("%d sites split into two halves of %d\n\n", len(sites), len(left))
	net.Partition(left, right)

	// Both sides keep publishing: ingest is local by design.
	for i := 0; i < perSide; i++ {
		if _, err := m.Publish(pubAt(i, net, left[i%len(left)])); err != nil {
			log.Fatal(err)
		}
		if _, err := m.Publish(pubAt(1000+i, net, right[i%len(right)])); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("— partitioned —")
	fmt.Printf("query from the left side:  %d records\n", answer(m, left[1]))
	fmt.Printf("query from the right side: %d records (same query!)\n", answer(m, right[1]))
	fmt.Printf("distinct view fingerprints: %d\n", len(fingerprints(m, sites)))
	fmt.Printf("digest deltas queued for the far side: %d publications\n\n", m.PendingDigests())

	net.HealPartition()
	for i := 0; i < 4; i++ {
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("— healed —")
	fmt.Printf("query from the left side:  %d records\n", answer(m, left[1]))
	fmt.Printf("query from the right side: %d records\n", answer(m, right[1]))
	fmt.Printf("distinct view fingerprints: %d (converged)\n", len(fingerprints(m, sites)))
	fmt.Printf("digest deltas still pending: %d\n", m.PendingDigests())
}
