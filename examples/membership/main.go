// Membership: the ARRIVAL half of "sites come and go", end to end.
//
// Act I grows a live 20-node Chord-style DHT by four cold nodes. Each
// join splices the newcomer into the ring and hands it, in one charged
// transfer from its successor, every key whose placement it now owns —
// so lookups route through the grown ring immediately, no republish
// round needed. The example prints members, handed-off records, and the
// handoff's byte bill.
//
// Act II crashes a distributed-PASS site, lets the federation gossip on
// without it, and then heals it — and does NOTHING else. The site
// detects its own recovery inside the next maintenance round and fetches
// its catch-up snapshot itself: zero operator Rejoin calls, senders'
// outboxes pruned.
//
// Act III generates a randomized membership schedule (seeded joins,
// crashes, partitions, loss bursts — the E17 generator) and replays the
// SAME schedule against the DHT and the distributed PASS, printing each
// model's recall, convergence rounds, and handoff bytes.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"

	"pass/internal/arch"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/arch/schedule"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func pubAt(n int, net *netsim.Network, origin netsim.SiteID) arch.Pub {
	s, err := net.Site(origin)
	if err != nil {
		log.Fatal(err)
	}
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(n), byte(n>>8), 0xE8
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(n))),
			provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
		).
		CreatedAt(int64(n) + 1).Build()
	if err != nil {
		log.Fatal(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

func lookupable(m arch.Model, from netsim.SiteID, ids []provenance.ID) int {
	ok := 0
	for _, id := range ids {
		if _, _, err := m.Lookup(from, id); err == nil {
			ok++
		}
	}
	return ok
}

func main() {
	fmt.Println("— act I: DHT node join with charged key handoff —")
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, 20270)
	members, cold := sites[:20], sites[20:]
	d := dht.New(net, members)
	var ids []provenance.ID
	for i := 0; i < 60; i++ {
		p := pubAt(i, net, members[(i*5)%len(members)])
		if _, err := d.Publish(p); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	fmt.Printf("published %d records across %d ring members; %d cold nodes wait outside\n",
		len(ids), d.Members(), len(cold))

	before := net.Stats()
	for i, c := range cold {
		if _, err := d.Join(c, members[i*3]); err != nil {
			log.Fatal(err)
		}
	}
	st := net.Stats()
	fmt.Printf("four joins: ring now %d members, %d records handed off (%d bytes of handoff in %d bytes of join traffic)\n",
		d.Members(), d.HandedOff(), d.HandoffBytes(), st.Bytes-before.Bytes)
	fmt.Printf("lookups through the grown ring: %d/%d keys resolve, queried from a fresh joiner\n\n",
		lookupable(d, cold[0], ids), len(ids))

	fmt.Println("— act II: passnet proactive rejoin (zero operator calls) —")
	net2, sites2 := netsim.RandomTopology(netsim.Config{}, 6, 4, 20271)
	m := passnet.New(net2, sites2, passnet.Options{})
	victim := sites2[20]
	n := 0
	publish := func(count int) {
		for i := 0; i < count; i++ {
			if _, err := m.Publish(pubAt(1000+n, net2, sites2[n%12])); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}
	publish(12)
	tick := func() {
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	tick()
	net2.Fail(victim)
	for wave := 0; wave < 5; wave++ {
		publish(12)
		tick()
	}
	queued := m.PendingDigests()
	net2.Heal(victim)
	fmt.Printf("site %d crashed through 5 gossip waves; %d publications queued for it\n", victim, queued)
	tick() // the site notices its own recovery and snapshots — nobody calls Rejoin
	fmt.Printf("one maintenance round after the heal: %d proactive rejoin(s) fired, %d publications still queued\n\n",
		m.ProactiveRejoins(), m.PendingDigests())

	fmt.Println("— act III: one randomized schedule, two architectures —")
	cfg := schedule.Config{
		Sites: 24, SitesPerZone: 4, Joiners: 3,
		Rounds: 10, EventRate: 0.6, PubsPerRound: 5,
	}
	sched := schedule.Generate(20272, cfg)
	fmt.Print(sched)
	for _, run := range []struct {
		name  string
		build func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	}{
		{"dht", func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		}},
		{"passnet", func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}},
	} {
		o, err := schedule.Run(sched, run.build)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s acked %d/%d, joins %d, recall %.3f after %d convergence round(s), handoff %d bytes\n",
			run.name, o.Acked, o.Offered, o.Joins, o.Recall, o.ConvRounds, o.HandoffBytes)
	}
}
