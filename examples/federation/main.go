// Federation: Section V's second goal — "allow merging collections of
// local PASS installations into single globally searchable data archives"
// — on the world-city topology.
//
// Six cities each run a local PASS site holding their own sensor data
// (volcano monitoring in tokyo, traffic in london and boston, weather in
// seattle). Sites gossip compact digests; a consumer in boston then runs
// global attribute queries that touch only the sites that can answer,
// and a distributed transitive-closure query that chases a derivation
// chain across three continents in a handful of round trips.
//
// The same workload is also pushed through the centralized-warehouse and
// DHT models so the locality and traffic numbers can be compared side by
// side (the Section IV design-space argument, live).
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/workload"
)

func main() {
	// --- Topology: one PASS site per world city.
	net := netsim.New(netsim.Config{})
	cities := geo.WorldCities().Zones()
	var sites []netsim.SiteID
	siteOf := map[string]netsim.SiteID{}
	for _, z := range cities {
		id := net.AddSite(z.Name, z.Center, z.Name)
		sites = append(sites, id)
		siteOf[z.Name] = id
	}
	fmt.Printf("federation of %d local PASS sites: ", len(sites))
	for _, z := range cities {
		fmt.Printf("%s ", z.Name)
	}
	fmt.Println()

	model := passnet.New(net, sites, passnet.Options{ImmediateDigest: true})

	// --- Each site publishes its own domain's data (locale-specific!).
	clockVal := int64(0)
	clock := func() int64 { clockVal++; return clockVal }
	domains := map[string]workload.Domain{
		"tokyo":     workload.DomainVolcano,
		"london":    workload.DomainTraffic,
		"boston":    workload.DomainTraffic,
		"seattle":   workload.DomainWeather,
		"new-york":  workload.DomainMedical,
		"singapore": workload.DomainWeather,
	}
	pubCount := 0
	publishSet := func(g workload.GenSet, origin netsim.SiteID) provenance.ID {
		rec, id, err := provenance.NewRaw(g.Set.Digest(), int64(g.Set.EncodedSize())).
			Attrs(g.Attrs...).CreatedAt(clock()).Build()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := model.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err != nil {
			log.Fatal(err)
		}
		pubCount++
		return id
	}
	for city, dom := range domains {
		sets := workload.Generate(workload.Config{
			Domain: dom, Zones: []string{city},
			Windows: 4, SensorsPerZone: 3, ReadingsPerSensor: 6,
			WindowDur: time.Hour, Seed: uint64(len(city)),
		})
		for _, g := range sets {
			publishSet(g, siteOf[city])
		}
	}
	fmt.Printf("published %d tuple sets, each stored at its producing site\n\n", pubCount)

	boston := siteOf["boston"]

	// --- Global attribute query from boston: find all volcano data.
	got, lat, err := model.QueryAttr(boston, provenance.KeyDomain, provenance.String("volcano"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boston queries domain=volcano: %d records in %v (digest routing contacted %d remote site(s))\n",
		len(got), lat.Round(time.Microsecond), model.LastContacted())

	// --- Local query stays local: boston's own traffic.
	got, lat, err = model.QueryAttr(boston, provenance.KeyZone, provenance.String("boston"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boston queries zone=boston:    %d records in %v (no WAN hop needed)\n",
		len(got), lat.Round(time.Microsecond))

	// --- A derivation chain spanning three sites: tokyo raw → london
	// correlation → boston synthesis.
	tokyoSets := workload.Generate(workload.Config{
		Domain: workload.DomainVolcano, Zones: []string{"tokyo"},
		Windows: 1, SensorsPerZone: 2, ReadingsPerSensor: 4, WindowDur: time.Hour, Seed: 99,
	})
	tokyoRaw := publishSet(tokyoSets[0], siteOf["tokyo"])

	mkDerived := func(seed byte, tool string, origin netsim.SiteID, parents ...provenance.ID) provenance.ID {
		var digest [32]byte
		digest[0], digest[1] = seed, 0xFE
		rec, id, err := provenance.NewDerived(digest, 128, tool, "1.0", parents...).
			Attr(provenance.KeyDomain, provenance.String("cross-domain")).
			CreatedAt(clock()).Build()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := model.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err != nil {
			log.Fatal(err)
		}
		return id
	}
	correlated := mkDerived(1, "quake-traffic-correlate", siteOf["london"], tokyoRaw)
	synthesis := mkDerived(2, "global-synthesis", boston, correlated)

	net.ResetStats()
	anc, lat, err := model.QueryAncestors(boston, synthesis)
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("\ndistributed closure from boston over a tokyo→london→boston chain:\n")
	fmt.Printf("  %d ancestors, %v, %d messages (server-side traversal per site)\n",
		len(anc), lat.Round(time.Microsecond), st.Messages)

	// --- Side-by-side with the Section IV alternatives.
	fmt.Println("\nsame workload under the design-space alternatives:")
	for _, alt := range []struct {
		name string
		mk   func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	}{
		{"central (warehouse in singapore)", func(n *netsim.Network, s []netsim.SiteID) arch.Model {
			return central.New(n, siteOfIn(n, "singapore"))
		}},
		{"dht (random placement)", func(n *netsim.Network, s []netsim.SiteID) arch.Model {
			return dht.New(n, s)
		}},
	} {
		altNet := netsim.New(netsim.Config{})
		var altSites []netsim.SiteID
		for _, z := range cities {
			altSites = append(altSites, altNet.AddSite(z.Name, z.Center, z.Name))
		}
		m := alt.mk(altNet, altSites)
		// Publish boston's traffic data only, then query it from boston.
		sets := workload.Generate(workload.Config{
			Domain: workload.DomainTraffic, Zones: []string{"boston"},
			Windows: 4, SensorsPerZone: 3, ReadingsPerSensor: 6,
			WindowDur: time.Hour, Seed: 6,
		})
		bostonAlt := altSites[0]
		for i, z := range cities {
			if z.Name == "boston" {
				bostonAlt = altSites[i]
			}
		}
		c2 := int64(0)
		for _, g := range sets {
			rec, id, err := provenance.NewRaw(g.Set.Digest(), int64(g.Set.EncodedSize())).
				Attrs(g.Attrs...).CreatedAt(func() int64 { c2++; return c2 }()).Build()
			if err != nil {
				log.Fatal(err)
			}
			if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: bostonAlt}); err != nil {
				log.Fatal(err)
			}
		}
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
		altNet.ResetStats()
		_, lat, err := m.QueryAttr(bostonAlt, provenance.KeyZone, provenance.String("boston"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s boston-local query: %8v, %6d WAN bytes\n",
			alt.name+":", lat.Round(time.Microsecond), altNet.Stats().WANBytes)
	}
	net.ResetStats()
	_, localLat, err := model.QueryAttr(boston, provenance.KeyZone, provenance.String("boston"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-34s boston-local query: %8v, %6d WAN bytes\n",
		"passnet (this example):", localLat.Round(time.Microsecond), net.Stats().WANBytes)
	fmt.Println("\nBoston traffic data belongs in Boston — and under PASS, it stays there.")
}

// siteOfIn finds a named site in a network (it was registered above).
func siteOfIn(n *netsim.Network, name string) netsim.SiteID {
	if id := n.SiteByName(name); id != netsim.InvalidSite {
		return id
	}
	return 0
}
