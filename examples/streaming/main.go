// Streaming: Section I's dual-use requirement, live.
//
// "Readings and events emerging from a sensor network may be consumed
// immediately or stored for later analysis."
//
// A stream.Ingester sits in front of the PASS store: a live subscriber
// raises tachycardia alerts the moment a reading crosses threshold (the
// dispatcher's real-time path), while the same readings accumulate into
// event-time windows — including a late-arriving batch from a sensor
// that lost connectivity — and seal into the archive with full
// provenance, immediately queryable.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pass/internal/core"
	"pass/internal/provenance"
	"pass/internal/stream"
	"pass/internal/tuple"
	"pass/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "pass-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := core.Open(dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	ingester, err := stream.NewIngester(store, stream.Config{
		Window:          time.Minute,
		AllowedLateness: 15 * time.Second,
		BaseAttrs: func(zone string) []provenance.Attribute {
			return []provenance.Attribute{
				provenance.Attr(provenance.KeyDomain, provenance.String("medical")),
				provenance.Attr(provenance.KeySensorClass, provenance.String("ekg")),
			}
		},
		OnSeal: func(id provenance.ID, zone string, start, end int64, late bool) {
			tag := ""
			if late {
				tag = "  [LATE DATA]"
			}
			fmt.Printf("archive: sealed %s window [%3ds, %3ds] -> %s%s\n",
				zone, start/int64(time.Second), end/int64(time.Second), id.Short(), tag)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Real-time path: the dispatcher's alerting subscriber.
	alerts := 0
	ingester.Subscribe(func(zone string, r tuple.Reading) {
		if r.Value > 130 {
			alerts++
			fmt.Printf("LIVE ALERT: %s heart rate %.0f bpm at t=%ds\n",
				r.SensorID, r.Value, r.Time/int64(time.Second))
		}
	})

	// The stream: 4 minutes of EKG at 5-second cadence, with a spike, and
	// a late batch arriving after its window closed.
	rng := workload.NewRand(7)
	fmt.Println("streaming 4 minutes of EKG data...")
	for i := 0; i < 48; i++ {
		at := time.Duration(i) * 5 * time.Second
		hr := 80 + 10*rng.Norm()
		if i == 20 || i == 21 {
			hr = 140 + 5*rng.Norm() // tachycardia burst
		}
		if _, err := ingester.Feed("er-bay-3", tuple.Reading{
			SensorID: "ekg-patient-07",
			Time:     at.Nanoseconds(),
			Value:    hr,
		}); err != nil {
			log.Fatal(err)
		}
	}
	// A sensor that buffered readings during an outage delivers them now —
	// their event times belong to the first (long-sealed) window.
	fmt.Println("\nreconnected sensor delivers buffered readings from minute 0:")
	for i := 0; i < 3; i++ {
		if _, err := ingester.Feed("er-bay-3", tuple.Reading{
			SensorID: "ekg-patient-07-backup",
			Time:     (time.Duration(i*10) * time.Second).Nanoseconds(),
			Value:    82,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := ingester.Flush(); err != nil {
		log.Fatal(err)
	}

	st := ingester.Stats()
	fmt.Printf("\nstream stats: %d windows sealed (%d late), %d live alerts raised\n",
		st.Sealed, st.LateSealed, alerts)

	// Archival path: everything is already queryable with provenance.
	ids, err := store.QueryString(`domain=medical AND zone=er-bay-3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive query 'domain=medical AND zone=er-bay-3': %d windows\n", len(ids))
	lateIDs, err := store.QueryString(`late=true`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windows marked late=true: %d (analysts can include or exclude them)\n", len(lateIDs))

	rep, err := store.VerifyConsistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistency audit: records=%d clean=%v\n", rep.Records, rep.Clean())
}
