// Traffic: the paper's opening scenario (Section I) end to end.
//
// "While traffic data from London's Congestion Zone is useful immediately
// to ticket non-paying drivers, it is also useful in other ways: it could
// be aggregated over time to estimate the effects of changing Zone size,
// or it could be combined geographically with data from other cities ...
// Even deeper insight might be gained by merging historical traffic data
// with historical weather data."
//
// The example ingests windowed camera data for London and Boston, builds
// the aggregation/merge/join pipeline above, then answers the Section
// II-B investigator's question — "looking up the magnetometer readings
// that generated some suspect sighting data" — with a lineage query, and
// finishes with the archival story: payload GC that retains provenance.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pass/internal/core"
	"pass/internal/provenance"
	"pass/internal/tuple"
	"pass/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "pass-traffic-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := core.Open(dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	day := time.Date(2005, 4, 5, 0, 0, 0, 0, time.UTC)

	// --- Ingest: 6 hourly windows per city of congestion-zone sightings.
	traffic := workload.Generate(workload.Config{
		Domain:  workload.DomainTraffic,
		Zones:   []string{"london", "boston"},
		Windows: 6, SensorsPerZone: 4, ReadingsPerSensor: 12,
		WindowDur: time.Hour, StartTime: day.UnixNano(), Seed: 2005,
	})
	trafficIDs, err := workload.IngestAll(store, traffic)
	if err != nil {
		log.Fatal(err)
	}
	weather := workload.Generate(workload.Config{
		Domain:  workload.DomainWeather,
		Zones:   []string{"london"},
		Windows: 6, SensorsPerZone: 2, ReadingsPerSensor: 4,
		WindowDur: time.Hour, StartTime: day.UnixNano(), Seed: 2006,
	})
	weatherIDs, err := workload.IngestAll(store, weather)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d traffic and %d weather tuple sets\n", len(trafficIDs), len(weatherIDs))

	// --- Pipeline stage 1: aggregate each city's day ("aggregated over
	// time to estimate the effects of changing Zone size").
	cityAgg := make(map[string]provenance.ID)
	for _, city := range []string{"london", "boston"} {
		ids, err := store.QueryString("domain=traffic AND zone=" + city)
		if err != nil {
			log.Fatal(err)
		}
		var inputs []*tuple.Set
		for _, id := range ids {
			ts, err := store.GetData(id)
			if err != nil {
				log.Fatal(err)
			}
			inputs = append(inputs, ts)
		}
		agg := workload.Aggregate(inputs, city+"-hourly-mean")
		aggID, err := store.Derive(ids, "daily-aggregate", "3.0", agg,
			provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			provenance.Attr(provenance.KeyZone, provenance.String(city)),
			provenance.Attr("granularity", provenance.String("daily")),
		)
		if err != nil {
			log.Fatal(err)
		}
		cityAgg[city] = aggID
		fmt.Printf("daily aggregate for %-7s %s (from %d windows)\n", city+":", aggID.Short(), len(ids))
	}

	// --- Stage 2: cross-city merge ("combined geographically with data
	// from other cities").
	lonAgg, _ := store.GetData(cityAgg["london"])
	bosAgg, _ := store.GetData(cityAgg["boston"])
	merged := workload.Merge([]*tuple.Set{lonAgg, bosAgg})
	mergeID, err := store.Derive(
		[]provenance.ID{cityAgg["london"], cityAgg["boston"]},
		"cross-city-merge", "1.0", merged,
		provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
		provenance.Attr("coverage", provenance.String("london+boston")),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-city merge:      ", mergeID.Short())

	// --- Stage 3: weather join ("merging historical traffic data with
	// historical weather data").
	wParents := append([]provenance.ID{mergeID}, weatherIDs...)
	wAll := []*tuple.Set{merged}
	for _, id := range weatherIDs {
		ts, err := store.GetData(id)
		if err != nil {
			log.Fatal(err)
		}
		wAll = append(wAll, ts)
	}
	joined := workload.Merge(wAll)
	joinID, err := store.Derive(wParents, "weather-join", "0.9", joined,
		provenance.Attr(provenance.KeyDomain, provenance.String("traffic+weather")),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic×weather join:  ", joinID.Short())

	// --- The investigator's question (Section II-B): this joined data
	// looks suspect — find the raw tuple sets it came from, and which
	// postprocessing programs touched it.
	roots, err := store.Roots(joinID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance audit of the join: %d raw origin sets\n", len(roots))
	tools, err := store.QueryString(`"~tool"=daily-aggregate`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuple sets handled by 'daily-aggregate': %d\n", len(tools))

	// Every origin is reachable; check one lineage path.
	ok, err := store.Reachable(joinID, trafficIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join reachable from first london window: %v\n", ok)

	// --- Archival story: after the day closes, raw payloads are
	// collected; provenance stays queryable (P4).
	n, err := store.RemoveDataBefore(day.Add(3 * time.Hour).UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGC: collected %d early-morning payloads\n", n)
	roots2, err := store.Roots(joinID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origins still resolvable after GC: %d/%d\n", len(roots2), len(roots))
	rep, err := store.VerifyConsistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: records=%d collected=%d clean=%v\n", rep.Records, rep.Collected, rep.Clean())
}
