// Churn: what happens to a metadata federation when sites CRASH and
// REJOIN, not merely drop packets.
//
// Act I runs a 24-node Chord-style DHT. Three nodes crash; the keys they
// owned vanish from lookups (routing detours around the hole but the data
// holder is gone). One stabilization round later — successor probes,
// membership repair, replica promotion, all charged on the simulated
// wire — every key resolves again, re-homed onto the dead nodes'
// successors, with the crashed nodes STILL down.
//
// Act II runs the paper's distributed PASS over the same kind of
// topology. One site crashes while the rest keep publishing; digest
// deltas for it pile up in every sender's outbox. When it returns it
// does not wait out the per-sender replay: it asks its nearest live
// neighbour for one view snapshot (bytes charged at the snapshot's wire
// size), fast-forwards its per-origin sequence numbers, and the senders
// prune their queues. The example prints both recovery paths' byte
// bills side by side.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"pass/internal/arch"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func pubAt(n int, net *netsim.Network, origin netsim.SiteID) arch.Pub {
	s, err := net.Site(origin)
	if err != nil {
		log.Fatal(err)
	}
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(n), byte(n>>8), 0xC8
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(n))),
			provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
		).
		CreatedAt(int64(n) + 1).Build()
	if err != nil {
		log.Fatal(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

func lookupable(m arch.Model, from netsim.SiteID, ids []provenance.ID) int {
	ok := 0
	for _, id := range ids {
		if _, _, err := m.Lookup(from, id); err == nil {
			ok++
		}
	}
	return ok
}

func main() {
	fmt.Println("— act I: DHT key re-homing —")
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, 20260)
	d := dht.New(net, sites)
	var ids []provenance.ID
	for i := 0; i < 48; i++ {
		p := pubAt(i, net, sites[(i*5)%len(sites)])
		if _, err := d.Publish(p); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	fmt.Printf("published %d records across %d ring members\n", len(ids), d.Members())

	victims := []netsim.SiteID{sites[3], sites[11], sites[19]}
	for _, v := range victims {
		net.Fail(v)
	}
	fmt.Printf("3 nodes crash: %d/%d keys still resolvable\n",
		lookupable(d, sites[0], ids), len(ids))

	before := net.Stats()
	if _, err := d.Stabilize(); err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("one stabilize round (%d msgs, %d bytes of probes+transfers): ring now %d members, %d records re-homed\n",
		st.Messages-before.Messages, st.Bytes-before.Bytes, d.Members(), d.Rehomed())
	fmt.Printf("victims still down: %d/%d keys resolvable again\n\n",
		lookupable(d, sites[0], ids), len(ids))

	fmt.Println("— act II: passnet rejoin by snapshot vs outbox replay —")
	replay := runRejoinScenario(false)
	snap := runRejoinScenario(true)
	fmt.Printf("outbox replay:   %6d bytes, converged after %d gossip round(s)\n", replay.bytes, replay.rounds)
	fmt.Printf("rejoin snapshot: %6d bytes, converged after %d gossip round(s)\n", snap.bytes, snap.rounds)
	fmt.Printf("the snapshot saves %d bytes and the senders prune %d queued deltas unsent\n",
		replay.bytes-snap.bytes, snap.pruned)
}

type recovery struct {
	bytes  int64
	rounds int
	pruned int
}

// runRejoinScenario crashes one passnet site, lets the federation gossip
// on without it, heals it, and recovers either by plain anti-entropy
// replay or by an explicit rejoin state transfer. Both legs run with
// ManualRejoin set — by default a recovered site snapshots itself inside
// Tick (see examples/membership), which would make the replay leg take
// the snapshot path too and erase the comparison this example exists
// to print.
func runRejoinScenario(useRejoin bool) recovery {
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, 20261)
	m := passnet.New(net, sites, passnet.Options{ManualRejoin: true})
	victim := sites[20]

	n := 0
	publish := func(count int) {
		for i := 0; i < count; i++ {
			if _, err := m.Publish(pubAt(1000+n, net, sites[n%12])); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}
	publish(12)
	for i := 0; i < 2; i++ {
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	net.Fail(victim)
	for wave := 0; wave < 6; wave++ {
		publish(12)
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	net.Heal(victim)

	queued := m.PendingDigests()
	before := net.Stats()
	var out recovery
	if useRejoin {
		if _, err := m.Rejoin(victim); err != nil {
			log.Fatal(err)
		}
		out.pruned = queued - m.PendingDigests()
	}
	for m.PendingDigests() > 0 {
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
		out.rounds++
	}
	out.bytes = net.Stats().Bytes - before.Bytes
	return out
}
