// Ambulance: Section III-C's sensor-enabled EMT team.
//
// "EMTs arriving at an accident or mass casualty event place sensors
// (e.g., pulse oximeters, EKGs) on the patients ... As it moves through
// the system, it gets processed and filtered, and is thus enriched with
// additional provenance."
//
// The example streams vitals for three patients handled by two EMTs,
// enriches each stream through a cleaning + alerting pipeline, then runs
// the paper's own query list:
//
//   - "Show me everything we've done for this patient."
//   - "Show me the heart rate from moment of arrival until now."
//   - "Give heart rate profiles for everyone handled by EMT X."
//   - "Find me all patients with signs of arrhythmia."
//
// plus the taint query from Section III-B: a bug is found in the
// diagnostic tool, so every downstream data set must be located.
//
//	go run ./examples/ambulance
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pass/internal/core"
	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/tuple"
	"pass/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "pass-ambulance-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := core.Open(dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	arrival := time.Date(2005, 4, 5, 14, 30, 0, 0, time.UTC)
	rng := workload.NewRand(911)
	patients := []string{"patient-07", "patient-08", "patient-09"}
	emts := map[string]string{"patient-07": "emt-jones", "patient-08": "emt-jones", "patient-09": "emt-silva"}

	// --- Streaming phase: one raw tuple set per patient per 10-minute
	// window (pulse-ox + EKG multiplexed).
	rawByPatient := make(map[string][]provenance.ID)
	for _, patient := range patients {
		for w := 0; w < 3; w++ {
			start := arrival.Add(time.Duration(w) * 10 * time.Minute)
			ts := &tuple.Set{}
			base := 70 + float64(rng.Intn(30))
			for i := 0; i < 30; i++ {
				hr := base + 8*rng.Norm()
				if patient == "patient-08" && i%7 == 0 {
					hr += 55 // arrhythmia spikes for one patient
				}
				ts.Append(tuple.Reading{
					SensorID: "ekg-" + patient,
					Time:     start.Add(time.Duration(i) * 20 * time.Second).UnixNano(),
					Value:    hr,
					Label:    patient,
				})
			}
			id, err := store.IngestTupleSet(ts,
				provenance.Attr(provenance.KeyDomain, provenance.String("medical")),
				provenance.Attr(provenance.KeyPatient, provenance.String(patient)),
				provenance.Attr(provenance.KeyEMT, provenance.String(emts[patient])),
				provenance.Attr(provenance.KeySensorClass, provenance.String("ekg")),
				provenance.Attr(provenance.KeyStart, provenance.TimeVal(start)),
				provenance.Attr(provenance.KeyEnd, provenance.TimeVal(start.Add(10*time.Minute))),
			)
			if err != nil {
				log.Fatal(err)
			}
			rawByPatient[patient] = append(rawByPatient[patient], id)
		}
	}
	fmt.Println("streamed 3 windows × 3 patients of EKG data")

	// --- Enrichment pipeline: clean → diagnose per patient.
	diagnosed := make(map[string]provenance.ID)
	for _, patient := range patients {
		ids := rawByPatient[patient]
		var all []*tuple.Set
		for _, id := range ids {
			ts, err := store.GetData(id)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, ts)
		}
		cleanedSet := workload.Merge(all)
		cleaned, err := store.Derive(ids, "artifact-clean", "2.4", cleanedSet,
			provenance.Attr(provenance.KeyDomain, provenance.String("medical")),
			provenance.Attr(provenance.KeyPatient, provenance.String(patient)),
		)
		if err != nil {
			log.Fatal(err)
		}
		// Diagnosis: flag readings over 120 bpm.
		alerts := workload.Filter(cleanedSet, 120)
		diagID, err := store.Derive([]provenance.ID{cleaned}, "auto-diagnose", "0.7", alerts,
			provenance.Attr(provenance.KeyDomain, provenance.String("medical")),
			provenance.Attr(provenance.KeyPatient, provenance.String(patient)),
			provenance.Attr("alert-count", provenance.Int64(int64(alerts.Len()))),
			provenance.Attr("arrhythmia", provenance.Bool(alerts.Len() > 2)),
		)
		if err != nil {
			log.Fatal(err)
		}
		diagnosed[patient] = diagID
	}

	// --- Query 1: everything we've done for patient-08.
	ids, err := store.QueryString(`patient=patient-08`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"everything for patient-08\": %d records (raw windows + pipeline stages)\n", len(ids))

	// --- Query 2: heart rate from arrival until now (time overlap).
	ids, err = store.QueryString(fmt.Sprintf(`patient=patient-07 AND OVERLAPS [%d, %d]`,
		arrival.UnixNano(), arrival.Add(15*time.Minute).UnixNano()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\"patient-07 from arrival to +15min\": %d raw windows\n", len(ids))

	// --- Query 3: heart rate profiles for everyone handled by EMT Jones.
	ids, err = store.QueryString(`emt=emt-jones AND sensor-class=ekg`)
	if err != nil {
		log.Fatal(err)
	}
	patientsSeen := map[string]bool{}
	for _, id := range ids {
		rec, err := store.GetRecord(id)
		if err != nil {
			log.Fatal(err)
		}
		if v, ok := rec.Get(provenance.KeyPatient); ok {
			patientsSeen[v.Str] = true
		}
	}
	fmt.Printf("\"profiles handled by emt-jones\": %d windows across %d patients\n", len(ids), len(patientsSeen))

	// --- Query 4: all patients with signs of arrhythmia.
	ids, err = store.QueryString(`arrhythmia=true`)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range ids {
		rec, _ := store.GetRecord(id)
		p, _ := rec.Get(provenance.KeyPatient)
		fmt.Printf("\"patients with arrhythmia\": %s (diagnosis %s)\n", p.Str, id.Short())
	}

	// --- The taint scenario: auto-diagnose 0.7 has a bug. Find every
	// affected data set (forward closure from the tool's outputs) so the
	// downstream can be invalidated.
	buggy, err := store.QueryString(`"~tool"=auto-diagnose`)
	if err != nil {
		log.Fatal(err)
	}
	tainted := map[provenance.ID]bool{}
	for _, id := range buggy {
		tainted[id] = true
		desc, err := store.Descendants(id, index.NoLimit)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range desc {
			tainted[d] = true
		}
	}
	fmt.Printf("\ntool recall: auto-diagnose produced/tainted %d data sets — all locatable\n", len(tainted))

	// Show one patient's full lineage for the hospital hand-off.
	tree, err := store.LineageTree(diagnosed["patient-08"], 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhand-off lineage for patient-08's diagnosis:")
	fmt.Print(tree)
}
