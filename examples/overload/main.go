// Overload: a regional flash crowd hits the metadata plane.
//
// Section III-A's congestion-pricing scenario goes wrong on purpose: a
// multi-car accident in the tolled zone and suddenly every camera,
// loop detector, and reporting app publishes at once. The metadata plane
// sees a 20x regional burst on top of its steady diurnal load.
//
// Three deployments face the SAME seeded open-loop arrival schedule
// (internal/workload — nobody slows down because the server is busy):
//
//   - central        — every publish crosses the WAN to the warehouse;
//     the flash crowd convoys behind it and publish latency grows with
//     the queue, unbounded.
//   - central-adm    — the same warehouse behind a ratelimit.Admission
//     controller (per-client token buckets + a bounded queue): overload
//     work is refused with a cheap error, the tail stays bounded, and
//     the shed counters say exactly what was dropped.
//   - local append   — the PASS federation indexes at the origin site;
//     the flash crowd is absorbed at LAN cost and the WAN never queues.
//
// The table prints each round of the storm; the summary compares the
// latency tails and what fraction of the offered work each deployment
// actually indexed.
//
//	go run ./examples/overload
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/passnet"
	"pass/internal/geo"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/ratelimit"
	"pass/internal/workload"
)

const (
	rounds   = 16
	roundDur = 20 * time.Millisecond
)

func pubAt(n int, net *netsim.Network, origin netsim.SiteID) arch.Pub {
	s, err := net.Site(origin)
	if err != nil {
		log.Fatal(err)
	}
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(n), byte(n>>8), 0xF1
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(n))),
			provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
		).
		CreatedAt(int64(n) + 1).Build()
	if err != nil {
		log.Fatal(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

// deployment runs one model against the storm and keeps its own books.
type deployment struct {
	name   string
	m      arch.Model
	adm    *ratelimit.Admission
	queue  []arch.Pub
	qRound []int
	lat    *metrics.Histogram
	served int
	shed   int
}

// offer runs one round's arrivals and, for queueing deployments, drains
// up to one round's budget of simulated service time.
func (d *deployment) offer(round int, pubs []arch.Pub) {
	for _, p := range pubs {
		if d.adm == nil {
			d.queue = append(d.queue, p)
			d.qRound = append(d.qRound, round)
			continue
		}
		lat, err := d.m.Publish(p)
		switch {
		case err == nil:
			d.served++
			d.lat.Observe(ms(lat))
		case errors.Is(err, ratelimit.ErrRateLimited), errors.Is(err, ratelimit.ErrOverload):
			d.shed++
		default:
			log.Fatalf("%s: %v", d.name, err)
		}
	}
	if d.adm == nil {
		var spent time.Duration
		for len(d.queue) > 0 && spent < roundDur {
			p, qr := d.queue[0], d.qRound[0]
			d.queue, d.qRound = d.queue[1:], d.qRound[1:]
			lat, err := d.m.Publish(p)
			if err != nil {
				log.Fatalf("%s: %v", d.name, err)
			}
			spent += lat
			d.lat.Observe(ms(time.Duration(round-qr)*roundDur + lat))
			d.served++
		}
	}
	if err := d.m.Tick(); err != nil {
		log.Fatalf("%s tick: %v", d.name, err)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func main() {
	mk := func() (*netsim.Network, []netsim.SiteID) {
		net := netsim.New(netsim.Config{})
		m := geo.GridLayout(16, 500, 50)
		var sites []netsim.SiteID
		for _, z := range m.Zones() {
			sites = append(sites, net.AddSite("site-"+z.Name, z.Center, z.Name))
		}
		return net, sites
	}

	netC, sitesC := mk()
	netA, sitesA := mk()
	netP, sitesP := mk()
	adm := ratelimit.NewAdmission(ratelimit.Config{
		PerClientRate:  4,
		PerClientBurst: 12,
		Budget:         roundDur,
		MaxBacklog:     5 * roundDur,
	})
	admModel := central.New(netA, sitesA[0])
	admModel.SetAdmission(adm)
	deps := []*deployment{
		{name: "central", m: central.New(netC, sitesC[0]), lat: metrics.NewHistogram(4096)},
		{name: "central-adm", m: admModel, adm: adm, lat: metrics.NewHistogram(4096)},
		{name: "local-append", m: passnet.New(netP, sitesP, passnet.Options{}), lat: metrics.NewHistogram(4096)},
	}
	sites := [][]netsim.SiteID{sitesC, sitesA, sitesP}

	// The storm: steady diurnal load, then a 20x flash crowd pinned to
	// the accident's hot key for rounds 6-8. One schedule, replayed
	// identically for every deployment.
	gen := workload.NewOpenLoop(workload.OpenLoopConfig{
		Seed:            7,
		Clients:         48,
		HotKeys:         8,
		NominalPerRound: 3,
		Shape:           workload.ShapeFlash,
		FlashStart:      6,
		FlashLen:        3,
		FlashGain:       20,
		ZipfS:           1.1,
	})
	schedule := make([][]workload.Arrival, rounds)
	for r := range schedule {
		schedule[r] = gen.Arrivals(r)
	}

	fmt.Println("A flash crowd hits the congestion-pricing zone (rounds 6-8, 20x):")
	fmt.Println()
	fmt.Printf("%-5s %8s | %-21s | %-23s | %s\n",
		"round", "offered", "central served/queued", "central-adm served/shed", "local served")
	offered := 0
	for r := 0; r < rounds; r++ {
		for di, d := range deps {
			var pubs []arch.Pub
			for i, a := range schedule[r] {
				pubs = append(pubs, pubAt(offered+i, netOf(di, netC, netA, netP), sites[di][a.Client%len(sites[di])]))
			}
			d.offer(r, pubs)
		}
		offered += len(schedule[r])
		marker := ""
		if r >= 6 && r < 9 {
			marker = "  <-- flash crowd"
		}
		fmt.Printf("%-5d %8d | %9d / %9d | %10d / %10d | %12d%s\n",
			r, len(schedule[r]),
			deps[0].served, len(deps[0].queue),
			deps[1].served, deps[1].shed,
			deps[2].served, marker)
	}

	// Let the plain queues drain a few grace rounds, then compare tails.
	for r := rounds; r < rounds+4; r++ {
		for _, d := range deps {
			d.offer(r, nil)
		}
	}

	fmt.Println()
	fmt.Printf("%-13s %8s %8s %8s %9s %9s %9s\n",
		"deployment", "offered", "served", "shed", "p50-ms", "p99-ms", "p999-ms")
	for _, d := range deps {
		fmt.Printf("%-13s %8d %8d %8d %9.2f %9.2f %9.2f\n",
			d.name, offered, d.served, d.shed,
			d.lat.Quantile(0.5), d.lat.Quantile(0.99), d.lat.Quantile(0.999))
	}
	fmt.Println()
	fmt.Println("The warehouse convoys the flash crowd and its tail latency grows with")
	fmt.Println("the backlog; admission control refuses the excess cheaply and keeps the")
	fmt.Println("tail at the queue bound; the local-append federation never queues at all.")
	if st := adm.Stats(); st.ShedRate+st.ShedQueue > 0 {
		fmt.Printf("admission controller: offered=%d admitted=%d shed(rate)=%d shed(queue)=%d\n",
			st.Offered, st.Admitted, st.ShedRate, st.ShedQueue)
	}
}

// netOf picks the deployment's private network by roster position.
func netOf(di int, c, a, p *netsim.Network) *netsim.Network {
	switch di {
	case 0:
		return c
	case 1:
		return a
	default:
		return p
	}
}
