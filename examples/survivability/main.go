// Survivability: the paper's Reliability criterion (Section IV), live.
//
// A continental deployment of 48 PASS sites in 12 random zones (the
// shared geo.RandomLayout topology generator) takes 15% packet loss and
// then a clean network partition. The same workload runs over the
// centralized warehouse and the distributed PASS so the failure stories
// can be compared: the warehouse is a single point of failure the moment
// the partition separates producers from it, while distributed PASS keeps
// ingesting locally everywhere and converges to full recall once the
// partition heals and digests flush.
//
//	go run ./examples/survivability
package main

import (
	"fmt"
	"log"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/passnet"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

const (
	zones        = 12
	sitesPerZone = 4
	records      = 60
	lossRate     = 0.15
)

func makeNet() (*netsim.Network, []netsim.SiteID) {
	return netsim.RandomTopology(netsim.Config{LossRate: lossRate, Seed: 7}, zones, sitesPerZone, 42)
}

func pubAt(n int, net *netsim.Network, origin netsim.SiteID) arch.Pub {
	s, err := net.Site(origin)
	if err != nil {
		log.Fatal(err)
	}
	var digest [32]byte
	digest[0], digest[1] = byte(n), byte(n>>8)
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(n))),
			provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
		).
		CreatedAt(int64(n) + 1).Build()
	if err != nil {
		log.Fatal(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

func drive(name string, mk func(net *netsim.Network, sites []netsim.SiteID) arch.Model) {
	net, sites := makeNet()
	m := mk(net, sites)
	fmt.Printf("--- %s over %d sites, %.0f%% packet loss ---\n", name, len(sites), lossRate*100)

	// Phase 1: lossy but connected. Producers retry failed publishes.
	acked := 0
	for i := 0; i < records/2; i++ {
		p := pubAt(i, net, sites[(i*5)%len(sites)])
		for a := 0; a < 4; a++ {
			if _, err := m.Publish(p); err == nil {
				acked++
				break
			}
		}
	}
	flush(m)
	fmt.Printf("lossy network:     %d/%d publishes acked, recall %.2f, %d messages dropped\n",
		acked, records/2, recall(m, sites[1], acked), net.Stats().DroppedMsgs)

	// Phase 2: partition — the first two zones are cut off from the rest.
	cut := sites[:2*sitesPerZone]
	net.Partition(cut, sites[2*sitesPerZone:])
	pAcked := 0
	for i := records / 2; i < records; i++ {
		p := pubAt(i, net, cut[i%len(cut)]) // minority-side producers
		if _, err := m.Publish(p); err == nil {
			pAcked++
		}
	}
	flush(m)
	fmt.Printf("under partition:   %d/%d minority-side publishes acked\n", pAcked, records/2)

	// Phase 3: heal, re-offer what failed, flush digests.
	net.HealPartition()
	final := 0
	for i := 0; i < records; i++ {
		p := pubAt(i, net, siteFor(i, sites, cut))
		for a := 0; a < 6; a++ {
			if _, err := m.Publish(p); err == nil {
				final++
				break
			}
		}
	}
	flush(m)
	fmt.Printf("after heal:        %d/%d acked, recall %.2f, %d WAN bytes total\n\n",
		final, records, recall(m, sites[1], final), net.Stats().WANBytes)
}

func siteFor(i int, sites, cut []netsim.SiteID) netsim.SiteID {
	if i < records/2 {
		return sites[(i*5)%len(sites)]
	}
	return cut[i%len(cut)]
}

func flush(m arch.Model) {
	for i := 0; i < 8; i++ {
		if err := m.Tick(); err != nil {
			log.Fatal(err)
		}
	}
}

func recall(m arch.Model, from netsim.SiteID, acked int) float64 {
	if acked == 0 {
		return 0
	}
	got, _, err := m.QueryAttr(from, provenance.KeyDomain, provenance.String("traffic"))
	if err != nil {
		return 0
	}
	return float64(len(got)) / float64(acked)
}

func main() {
	drive("central warehouse", func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		return central.New(net, sites[2*sitesPerZone]) // warehouse on the majority side
	})
	drive("distributed PASS", func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		return passnet.New(net, sites, passnet.Options{})
	})
}
