# Build, test, and verification entry points for the PASS reproduction.
#
#   make check         — the full gate: vet, the whole test suite, a race
#                        pass over the concurrent packages, the hot-path
#                        microbenchmarks, and the perf regression gate.
#                        Run before sending a PR.
#   make short         — quick edit loop: -short shrinks the 1,000-site
#                        conformance sweeps and skips the 10k-site ones.
#   make bench         — regenerate the experiment tables (E1–E18) and
#                        write BENCH.json for comparison against the
#                        committed BENCH_3.json baseline. BENCH.json is
#                        scratch output (gitignored); the committed
#                        baselines are BENCH_3.json (perf gate) and
#                        BENCH_2.json (pre-fast-path, for bench-speedup).
#   make bench-quick   — the hot-path microbenchmarks (netsim Send,
#                        passnet Tick, siteview Apply, dht Lookup) at
#                        -benchtime=100x: fast enough for every check run,
#                        and it executes the allocation assertions' code
#                        paths so a Send regression fails loudly here.
#   make docs-check    — fail if an internal/ package lacks a package
#                        comment or README's experiment table drifts from
#                        the harness registry (cmd/docscheck).
#   make bench-check   — run the suite at the baseline's scale and fail on
#                        runtime regressions or broken recall invariants
#                        (cmd/benchcheck).
#   make bench-speedup — prove the fast-path win: run the suite fresh and
#                        require >= 2x whole-suite speedup against
#                        BENCH_2.json, the last baseline recorded before
#                        the netsim fast path + parallel harness. Not part
#                        of check (it compares across baseline
#                        generations, so it is only meaningful on hardware
#                        comparable to the recording machine).

GO ?= go

.PHONY: all build test short vet race check bench bench-quick bench-check bench-speedup docs-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The storage engine and provenance core get the full -race treatment;
# the architecture models and the experiment harness are mutex-bearing
# too (every model serializes state behind its lock), so they run under
# -race as well — at -short scale, because the 1,000-site conformance
# sweeps under the race detector's ~10x slowdown would dominate the gate
# without widening its coverage. netsim joins the net with its sharded
# atomic accounting, and the harness run covers the parallel cell runner:
# the serial-vs-parallel equivalence tests execute both paths. The ops
# surface is concurrent by design — the metrics registry and trace ring
# are scraped while soaks write to them — so metrics, trace, and obs run
# under -race too (obs at -short: its soaks replay full fault schedules),
# and ratelimit joins them: admission controllers take concurrent Offer
# calls by contract.
# The real-socket layer joins the net: wire endpoints multiplex inflight
# requests across goroutines and node handlers run concurrently, so wire
# and node race in full; the multi-process cluster harness races at
# -short (clean cross-check only — the lossy and churn schedules run in
# the CI integration job and the plain test target).
race:
	$(GO) test -race -count=1 ./internal/core ./internal/kvstore ./internal/netsim ./internal/metrics ./internal/trace ./internal/ratelimit
	$(GO) test -race -short -count=1 ./internal/arch/... ./internal/harness ./internal/obs
	$(GO) test -race -count=1 -run 'TestSerialParallelEquivalence|TestRunCells' ./internal/harness
	$(GO) test -race -count=1 ./internal/wire ./internal/node
	$(GO) test -race -short -count=1 ./internal/harness/cluster

check: vet test race bench-quick bench-check docs-check

# The documentation gate: every internal/ package must have a package
# comment and README's experiment table must match the harness registry.
docs-check:
	$(GO) run ./cmd/docscheck

bench:
	$(GO) run ./cmd/passbench -scale 0.5 -json BENCH.json

# Hot-path microbenchmarks at a fixed small iteration count: wall-clock
# numbers are informational, but the runs double as smoke tests for the
# allocation-free paths (the hard assertions live in the packages' test
# files, e.g. TestSendZeroAllocs).
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkSend|BenchmarkBroadcast|BenchmarkStats' -benchtime=100x ./internal/netsim
	$(GO) test -run '^$$' -bench 'BenchmarkPassnetTick' -benchtime=100x ./internal/arch/passnet
	$(GO) test -run '^$$' -bench 'BenchmarkSiteviewApply' -benchtime=100x ./internal/arch/siteview
	$(GO) test -run '^$$' -bench 'BenchmarkDHTLookup' -benchtime=100x ./internal/arch/dht
	$(GO) test -run '^$$' -bench 'BenchmarkOpenLoopGen' -benchtime=100x ./internal/workload
	$(GO) test -run '^$$' -bench 'BenchmarkTokenBucket' -benchtime=100x ./internal/ratelimit

# The perf trajectory gate (ROADMAP): regenerate the suite at the
# baseline's scale, then compare wall-clock per experiment (generous
# tolerance — this catches O(n) blowups, not noise) and recall
# invariants against the committed BENCH_3.json.
bench-check:
	$(GO) run ./cmd/passbench -scale 0.5 -json BENCH.json >/dev/null
	$(GO) run ./cmd/benchcheck -baseline BENCH_3.json -current BENCH.json

# The fast-path acceptance check: whole-suite wall-clock must beat the
# pre-optimization BENCH_2.json recording by >= 2x.
bench-speedup:
	$(GO) run ./cmd/passbench -scale 0.5 -json BENCH.json >/dev/null
	$(GO) run ./cmd/benchcheck -baseline BENCH_2.json -current BENCH.json -min-speedup 2
