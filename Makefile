# Build, test, and verification entry points for the PASS reproduction.
#
#   make check       — the full gate: vet, the whole test suite, a race
#                      pass over the concurrent packages, and the perf
#                      regression gate. Run before sending a PR.
#   make short       — quick edit loop: -short shrinks the 1,000-site
#                      conformance sweeps and skips the 10k-site ones.
#   make bench       — regenerate the experiment tables (E1–E17) and
#                      write BENCH.json for comparison against the
#                      committed BENCH_2.json baseline.
#   make docs-check  — fail if an internal/ package lacks a package
#                      comment or README's experiment table drifts from
#                      the harness registry (cmd/docscheck).
#   make bench-check — run the suite at the baseline's scale and fail on
#                      runtime regressions or broken recall invariants
#                      (cmd/benchcheck).

GO ?= go

.PHONY: all build test short vet race check bench bench-check docs-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The storage engine and provenance core get the full -race treatment;
# the architecture models and the experiment harness are mutex-bearing
# too (every model serializes state behind its lock), so they run under
# -race as well — at -short scale, because the 1,000-site conformance
# sweeps under the race detector's ~10x slowdown would dominate the gate
# without widening its coverage.
race:
	$(GO) test -race -count=1 ./internal/core ./internal/kvstore
	$(GO) test -race -short -count=1 ./internal/arch/... ./internal/harness

check: vet test race bench-check docs-check

# The documentation gate: every internal/ package must have a package
# comment and README's experiment table must match the harness registry.
docs-check:
	$(GO) run ./cmd/docscheck

bench:
	$(GO) run ./cmd/passbench -scale 0.5 -json BENCH.json

# The perf trajectory gate (ROADMAP): regenerate the suite at the
# baseline's scale, then compare wall-clock per experiment (generous
# tolerance — this catches O(n) blowups, not noise) and recall
# invariants against the committed BENCH_2.json.
bench-check:
	$(GO) run ./cmd/passbench -scale 0.5 -json BENCH.json >/dev/null
	$(GO) run ./cmd/benchcheck -baseline BENCH_2.json -current BENCH.json
