# Build, test, and verification entry points for the PASS reproduction.
#
#   make check   — the full gate: vet, the whole test suite, and a race
#                  pass over the concurrent packages. Run before sending
#                  a PR.
#   make short   — quick edit loop: -short shrinks the 1,000-site
#                  conformance sweeps.
#   make bench   — regenerate the experiment tables (E1–E14) and write
#                  BENCH.json for comparison against the committed
#                  BENCH_0.json baseline.

GO ?= go

.PHONY: all build test short vet race check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The storage engine and provenance core are the concurrency-bearing
# packages; -race over their tests covers the lock discipline the rest of
# the tree relies on.
race:
	$(GO) test -race -count=1 ./internal/core ./internal/kvstore

check: vet test race

bench:
	$(GO) run ./cmd/passbench -scale 0.5 -json BENCH.json
