module pass

go 1.24
